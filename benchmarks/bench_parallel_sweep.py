"""Experiment E-PAR — parallel campaign execution: speedup and determinism.

Runs the paper's 13-point probability sweep over the two-moons MLP twice —
once sequentially (workers=1) and once fanned over a 4-worker process pool —
and verifies both halves of the executor contract:

* determinism: every campaign statistic is bit-identical between the two
  runs (randomness is keyed by (seed, stream, p), never by execution order);
* throughput: on a host with >= 4 cores the parallel sweep is at least
  2x faster wall-clock than the sequential one.

The speedup assertion is skipped on smaller hosts where a process pool
cannot physically beat the sequential path.
"""

import functools
import os

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.exec import InjectorRecipe, ParallelCampaignExecutor
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.utils.timing import Timer

P_VALUES = tuple(np.logspace(-5, -1, 13))
SAMPLES_PER_POINT = 120
WORKERS = 4


def test_parallel_sweep_speedup_and_determinism(
    benchmark, golden_mlp_moons, moons_eval_batch, results_writer
):
    eval_x, eval_y = moons_eval_batch

    def make_injector():
        return BayesianFaultInjector(
            golden_mlp_moons,
            eval_x,
            eval_y,
            spec=TargetSpec.weights_and_biases(),
            seed=2019,
        )

    recipe = InjectorRecipe.from_model(
        golden_mlp_moons,
        eval_x,
        eval_y,
        spec=TargetSpec.weights_and_biases(),
        seed=2019,
        model_builder=functools.partial(paper_mlp, rng=0),
    )

    def timed_sweep(workers):
        executor = ParallelCampaignExecutor(recipe, workers=workers)
        with Timer() as timer:
            sweep = ProbabilitySweep(
                make_injector(),
                p_values=P_VALUES,
                samples=SAMPLES_PER_POINT,
                chains=2,
                executor=executor,
            ).run()
        return sweep, timer.elapsed, executor.stats

    sequential, sequential_s, _ = timed_sweep(workers=1)
    parallel, parallel_s, stats = benchmark.pedantic(
        lambda: timed_sweep(workers=WORKERS), rounds=1, iterations=1
    )
    speedup = sequential_s / parallel_s

    print(f"\n=== Parallel sweep: workers={WORKERS} vs workers=1 ===")
    print(format_table(parallel.table()))
    print(
        f"\nsequential {sequential_s:.2f}s, parallel {parallel_s:.2f}s "
        f"-> speedup {speedup:.2f}x on {os.cpu_count()} cores "
        f"(tasks={stats.tasks}, retries={stats.retries}, crashes={stats.crashes})"
    )

    results_writer.write(
        "EPAR_parallel_sweep",
        {
            "p_values": np.asarray(P_VALUES),
            "error": parallel.errors(),
            "sequential_s": sequential_s,
            "parallel_s": parallel_s,
            "speedup": speedup,
            "workers": WORKERS,
            "cpu_count": os.cpu_count(),
        },
    )

    # Determinism holds on any host: parallel == sequential, bitwise.
    for seq_pt, par_pt in zip(sequential.points, parallel.points):
        seq_row = seq_pt.campaign.summary_row()
        par_row = par_pt.campaign.summary_row()
        seq_row.pop("duration_s")
        par_row.pop("duration_s")
        assert seq_row == par_row
        assert np.array_equal(
            seq_pt.campaign.chains.matrix(), par_pt.campaign.chains.matrix()
        )

    assert stats.parallel and stats.tasks == len(P_VALUES)

    # The speedup claim needs real cores behind the pool.
    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= 2.0, f"expected >=2x speedup at {WORKERS} workers, got {speedup:.2f}x"
    else:
        print(f"(speedup assertion skipped: only {os.cpu_count()} cores available)")
