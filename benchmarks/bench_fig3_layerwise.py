"""Experiment E3 — Fig. 3: ResNet-18 layer-by-layer injection.

Injects Bernoulli faults into one layer at a time over the full ResNet-18
layer sequence and verifies finding F3: no direct relationship between the
depth of the injected layer and the induced classification error (contra
Li et al. SC'17).
"""

import numpy as np

from repro.analysis import format_table, scatter_plot
from repro.core import LayerwiseCampaign

# p chosen so per-layer campaigns sit mid-rise for typical layer sizes
# (expected catastrophic flips per layer of order 1); far smaller layers
# stay near golden, far larger ones saturate — the spread Fig. 3 shows.
FLIP_P = 1e-4
SAMPLES_PER_LAYER = 30


def test_fig3_resnet_layerwise(benchmark, golden_resnet_images, resnet_image_eval, results_writer):
    eval_x, eval_y = resnet_image_eval

    campaign = benchmark.pedantic(
        lambda: LayerwiseCampaign(
            golden_resnet_images,
            eval_x,
            eval_y,
            p=FLIP_P,
            samples=SAMPLES_PER_LAYER,
            chains=1,
            seed=2019,
        ).run(),
        rounds=1,
        iterations=1,
    )

    correlation = campaign.depth_correlation()
    table = campaign.table()

    print("\n=== Fig. 3: ResNet-18 error by injected layer ===")
    print(format_table(table, columns=["depth", "layer", "error_pct", "ci_lo_pct", "ci_hi_pct", "parameters"]))
    print()
    depths = np.asarray([row["depth"] for row in table], dtype=float)
    errors = np.asarray([row["error_pct"] for row in table])
    print(scatter_plot(depths, errors, title="Fig. 3 — error (%) vs injected-layer depth", marker="x"))
    print(
        f"\nDepth-error rank correlation: Spearman rho={correlation['spearman_rho']:+.3f} "
        f"(p={correlation['spearman_p']:.3f}), Kendall tau={correlation['kendall_tau']:+.3f} "
        f"(p={correlation['kendall_p']:.3f})"
    )

    results_writer.write(
        "E3_fig3_layerwise",
        {"table": table, "correlation": correlation, "p": FLIP_P, "samples": SAMPLES_PER_LAYER},
    )

    # Finding F3: depth does not explain vulnerability. A monotone
    # depth-error law (as prior work claimed) would show |rho| near 1; we
    # require the rank correlation to be weak and not significant.
    assert abs(correlation["spearman_rho"]) < 0.5
    assert correlation["spearman_p"] > 0.01
