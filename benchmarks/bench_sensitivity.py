"""Ablation A4 — gradient-based vulnerability prediction.

Validates the first-order Taylor sensitivity map against ground truth and
demonstrates the rare-event capability it enables:

1. the analytic per-lane impact ranking must correlate with the exhaustive
   sweep's measured SDC/DUE rates;
2. gradient-guided critical-bit search must find an error-causing flip in
   far fewer forward passes than random injection.
"""

import numpy as np
from scipy import stats as sps

from repro.analysis import format_table
from repro.baselines import ExhaustiveBitInjector
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.sensitivity import TaylorSensitivity, critical_bit_search, random_bit_search

RANDOM_SEARCH_SEEDS = 20


def test_taylor_prediction_matches_ground_truth(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    spec = TargetSpec.weights_and_biases()
    injector = BayesianFaultInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=0)

    sensitivity = benchmark.pedantic(
        lambda: TaylorSensitivity(golden_mlp_moons, eval_x, eval_y, injector.parameter_targets),
        rounds=1,
        iterations=1,
    )

    exhaustive = ExhaustiveBitInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=0)
    measured = exhaustive.run()

    lanes = sensitivity.lane_profile()
    finite_max = max(v for v in lanes.values() if np.isfinite(v))
    predicted = [lanes[b] if np.isfinite(lanes[b]) else 10 * finite_max for b in range(32)]
    observed = [measured.sdc_by_bit[b] + measured.due_by_bit[b] for b in range(32)]
    correlation = sps.spearmanr(predicted, observed)

    rows = [
        {"bit": b, "predicted_impact": predicted[b], "measured_sdc_due": observed[b]}
        for b in (0, 10, 20, 22, 23, 26, 29, 30, 31)
    ]
    print("\n=== A4a: analytic Taylor impact vs exhaustive measurement (selected lanes) ===")
    print(format_table(rows))
    print(f"lane-level Spearman rho = {correlation.statistic:.3f} (p = {correlation.pvalue:.2e})")
    print("cost: 1 backward pass (analytic) vs "
          f"{sum(measured.count_by_bit.values())} forward passes (exhaustive)")

    results_writer.write(
        "A4a_taylor_validation",
        {"rows": rows, "spearman_rho": float(correlation.statistic), "spearman_p": float(correlation.pvalue)},
    )

    assert correlation.statistic > 0.6
    assert correlation.pvalue < 1e-4


def test_gradient_guided_critical_bit_search(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )
    sensitivity = TaylorSensitivity(golden_mlp_moons, eval_x, eval_y, injector.parameter_targets)

    guided = benchmark.pedantic(
        lambda: critical_bit_search(injector, sensitivity, candidates=64),
        rounds=1,
        iterations=1,
    )

    random_costs = []
    for seed in range(RANDOM_SEARCH_SEEDS):
        result = random_bit_search(injector, np.random.default_rng(seed), max_trials=500)
        random_costs.append(result.forward_passes if result.found else 500)

    rows = [
        {"method": "gradient-guided", "forward_passes": guided.forward_passes, "found": str(guided.found)},
        {
            "method": f"random (mean of {RANDOM_SEARCH_SEEDS} seeds)",
            "forward_passes": float(np.mean(random_costs)),
            "found": "varies",
        },
    ]
    print("\n=== A4b: forward passes to find a critical bit ===")
    print(format_table(rows))
    print(f"critical site found: {guided.sites}")

    results_writer.write(
        "A4b_critical_search",
        {
            "guided_passes": guided.forward_passes,
            "random_mean_passes": float(np.mean(random_costs)),
            "random_costs": random_costs,
        },
    )

    assert guided.found
    assert guided.forward_passes <= np.mean(random_costs)
