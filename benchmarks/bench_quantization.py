"""Ablation A6 — fixed-point vs floating-point fault resilience.

The paper: "All network parameters, inputs, and outputs are encoded as
32-bit floating point numbers. BDLFI can also be extended to other fault
models." The most consequential other model is int8 storage (the norm on
the embedded accelerators the paper targets). At equal per-bit AVF, int8
weights should be far more resilient: the code space has no exponent
field, so no single flip can push a weight beyond ±128·scale — reproducing
the fixed-point finding of Li et al. SC'17 and Ares.
"""

import numpy as np

from repro.analysis import format_table, multi_line_plot
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.quant import QuantizedBitFlipModel, quantize_model

P_VALUES = (1e-4, 1e-3, 1e-2, 1e-1)
SAMPLES = 120


def test_float32_vs_int8_resilience(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    spec = TargetSpec.weights_and_biases()

    # The deployed int8 twin of the golden network.
    quantized = paper_mlp(rng=0)
    quantized.load_state_dict(golden_mlp_moons.state_dict())
    report = quantize_model(quantized)
    quantized.eval()

    float_injector = BayesianFaultInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=2019)
    int8_injector = BayesianFaultInjector(quantized, eval_x, eval_y, spec=spec, seed=2019)

    def run_all():
        rows = []
        for p in P_VALUES:
            float_campaign = float_injector.forward_campaign(p, samples=SAMPLES)
            int8_campaign = int8_injector.forward_campaign(
                p, samples=SAMPLES, fault_model=QuantizedBitFlipModel(p, report.scales), stream="int8"
            )
            rows.append(
                {
                    "p": p,
                    "float32_excess_pct": 100 * float_campaign.posterior.excess_error,
                    "int8_excess_pct": 100 * int8_campaign.posterior.excess_error,
                    "float32_flips": float_campaign.mean_flips,
                    "int8_flips": int8_campaign.mean_flips,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== A6: excess classification error, float32 vs int8 storage ===")
    print(f"(int8 golden error {int8_injector.golden_error:.2%} vs float32 "
          f"{float_injector.golden_error:.2%}; quantisation cost "
          f"{abs(int8_injector.golden_error - float_injector.golden_error):.2%})")
    print(format_table(rows))
    print()
    print(
        multi_line_plot(
            np.asarray(P_VALUES),
            {
                "float32": np.asarray([row["float32_excess_pct"] for row in rows]),
                "int8": np.asarray([row["int8_excess_pct"] for row in rows]),
            },
            log_x=True,
            title="excess error (%) vs per-bit flip probability",
            x_label="p",
        )
    )

    results_writer.write(
        "A6_quantization",
        {
            "rows": rows,
            "float32_golden": float_injector.golden_error,
            "int8_golden": int8_injector.golden_error,
        },
    )

    # int8 storage keeps quantisation accuracy close to float
    assert abs(int8_injector.golden_error - float_injector.golden_error) < 0.05
    # and is more resilient per bit at every damaging probability.
    for row in rows:
        if row["float32_excess_pct"] > 2.0:
            assert row["int8_excess_pct"] < row["float32_excess_pct"]
