"""Ablation A5 — selective protection at the reliability knee.

The paper pitches the knee of the error-vs-p curve as "the optimal
performance-reliability trade-off" and calls for protecting what needs
protecting. This bench quantifies the options: protection schemes of
increasing overhead evaluated at a flip probability past the knee,
including the gradient-allocated scheme from :mod:`repro.protect`.
"""

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.protect import ProtectionScheme, allocate_protection, evaluate_scheme
from repro.sensitivity import TaylorSensitivity

FLIP_P = 5e-3
SAMPLES = 150


def test_protection_schemes(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )
    sensitivity = TaylorSensitivity(golden_mlp_moons, eval_x, eval_y, injector.parameter_targets)

    schemes = {
        "none": ProtectionScheme.none(),
        "sign only (3% overhead)": ProtectionScheme.field_everywhere("sign"),
        "exponent only (25%)": ProtectionScheme.field_everywhere("exponent"),
        "allocated @30% budget": allocate_protection(sensitivity, budget_fraction=0.30),
        "full ECC (100%)": ProtectionScheme.full(),
    }

    def run_all():
        return {
            name: evaluate_scheme(injector, scheme, FLIP_P, samples=SAMPLES)
            for name, scheme in schemes.items()
        }

    comparisons = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [{"scheme": name, **comparison.summary_row()} for name, comparison in comparisons.items()]
    print(f"\n=== A5: protection schemes at p={FLIP_P} ===")
    print(format_table(rows))

    results_writer.write("A5_protection", {"rows": rows, "p": FLIP_P})

    assert comparisons["full ECC (100%)"].recovery_fraction > 0.95
    assert comparisons["exponent only (25%)"].recovery_fraction > 0.5
    # Gradient-guided allocation must beat the uniform exponent scheme at
    # comparable overhead (it also covers the worst sign/mantissa sites).
    assert (
        comparisons["allocated @30% budget"].protected_error
        <= comparisons["exponent only (25%)"].protected_error + 0.02
    )
