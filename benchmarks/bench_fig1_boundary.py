"""Experiment E1 — Fig. 1 ③: log error-probability map near the decision boundary.

Regenerates the paper's decision-boundary panel: a 2-D MLP's feature space
is scanned on a grid; for each cell we estimate the probability that a
Bernoulli-AVF fault draw changes the prediction, render the log-probability
field, and verify finding F1 (errors concentrate at the boundary).
"""

import numpy as np

from repro.analysis import format_table, heatmap
from repro.core import DecisionBoundaryAnalysis
from repro.faults import BernoulliBitFlipModel

BOUNDS = (-1.5, 2.5, -1.2, 1.7)
RESOLUTION = 40
SAMPLES = 120
FLIP_P = 1e-3


def test_fig1_boundary_map(benchmark, golden_mlp_moons, results_writer):
    analysis = DecisionBoundaryAnalysis(
        golden_mlp_moons,
        bounds=BOUNDS,
        resolution=RESOLUTION,
        fault_model=BernoulliBitFlipModel(FLIP_P),
        seed=2019,
    )

    bmap = benchmark.pedantic(lambda: analysis.run(samples=SAMPLES), rounds=1, iterations=1)

    correlation = bmap.distance_correlation()
    bands = bmap.band_summary(5)

    print("\n=== Fig. 1 (3): log10 P(misclassification flip) over feature space ===")
    print(heatmap(bmap.log_flip_probability(), legend="log10 flip probability"))
    print("\nFlip probability by distance-to-boundary band (near -> far):")
    print(format_table(bands))
    print(f"\nSpearman(distance, flip probability): rho={correlation['spearman_rho']:.3f} "
          f"(p={correlation['spearman_p']:.2e})")

    results_writer.write(
        "E1_fig1_boundary",
        {
            "flip_probability": bmap.flip_probability,
            "boundary_distance": bmap.boundary_distance,
            "golden_prediction": bmap.golden_prediction,
            "bands": bands,
            "correlation": correlation,
            "samples": SAMPLES,
            "p": FLIP_P,
        },
    )

    # Finding F1: fault-induced errors concentrate at the decision boundary.
    assert correlation["spearman_rho"] < -0.1
    assert correlation["spearman_p"] < 1e-3
    flips = [band["mean_flip_probability"] for band in bands]
    assert flips[0] == max(flips)
