"""Ablation A2 — fault-target surface.

The paper's fault model covers parameters, inputs, activations, and
outputs. This ablation holds p fixed and varies *which* surface is
corrupted, quantifying each surface's contribution to end-to-end error.
"""

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import FaultSurface, TargetSpec

FLIP_P = 5e-3
SAMPLES = 120

SURFACES = {
    "weights": TargetSpec(surfaces=frozenset({FaultSurface.WEIGHTS})),
    "biases": TargetSpec(surfaces=frozenset({FaultSurface.BIASES})),
    "activations": TargetSpec(surfaces=frozenset({FaultSurface.ACTIVATIONS})),
    "inputs": TargetSpec(surfaces=frozenset({FaultSurface.INPUTS})),
    "all": TargetSpec.all_surfaces(),
}


def test_target_surface_ablation(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch

    def run_all():
        rows = []
        for name, spec in SURFACES.items():
            injector = BayesianFaultInjector(
                golden_mlp_moons, eval_x, eval_y, spec=spec, seed=2019
            )
            campaign = injector.forward_campaign(FLIP_P, samples=SAMPLES)
            lo, hi = campaign.posterior.credible_interval()
            rows.append(
                {
                    "surface": name,
                    "mean_error_pct": 100 * campaign.mean_error,
                    "ci_lo_pct": 100 * lo,
                    "ci_hi_pct": 100 * hi,
                    "excess_pct": 100 * campaign.posterior.excess_error,
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print(f"\n=== A2: fault surface ablation (Bernoulli p={FLIP_P}) ===")
    print(format_table(rows))

    results_writer.write("A2_target_surface", {"rows": rows, "p": FLIP_P})

    by_surface = {row["surface"]: row["mean_error_pct"] for row in rows}
    # Weights dominate (they are by far the largest storage surface), and
    # the all-surfaces campaign is at least as damaging as weights alone.
    assert by_surface["weights"] >= by_surface["biases"]
    assert by_surface["all"] >= by_surface["weights"] - 3.0
