"""Experiment E2 — Fig. 2: MLP classification error vs flip probability.

Sweeps the paper's p grid (1e-5 … 1e-1) over the image-classification MLP,
prints the error-vs-p series with the golden-run reference line, and
verifies finding F2 (two regimes with a knee).
"""

import numpy as np

from repro.analysis import format_table, line_plot
from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.faults import TargetSpec

P_VALUES = tuple(np.logspace(-5, -1, 13))
SAMPLES_PER_POINT = 150


def test_fig2_mlp_error_vs_p(benchmark, golden_mlp_images, mlp_image_eval, results_writer):
    eval_x, eval_y = mlp_image_eval
    injector = BayesianFaultInjector(
        golden_mlp_images, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    sweep = benchmark.pedantic(
        lambda: ProbabilitySweep(
            injector, p_values=P_VALUES, samples=SAMPLES_PER_POINT, chains=2
        ).run(),
        rounds=1,
        iterations=1,
    )

    fit = sweep.fit_regimes(truncate_saturation=True)
    table = sweep.table()

    print("\n=== Fig. 2: error injections in all layers of the MLP ===")
    print(format_table(table))
    print()
    print(
        line_plot(
            sweep.probabilities(),
            100 * sweep.errors(),
            log_x=True,
            title="Fig. 2 — MLP classification error (%) vs flip probability",
            x_label="flip probability p",
            y_label="% error (golden run dashed)",
            reference=100 * sweep.golden_error,
        )
    )
    print(
        f"\nTwo-regime fit: knee at p={fit.knee_p:.2e}, flat slope "
        f"{fit.slope_flat:+.4f}/decade, steep slope {fit.slope_steep:+.4f}/decade, "
        f"F-test p={fit.f_test_p:.2e}"
    )

    results_writer.write(
        "E2_fig2_mlp_sweep",
        {
            "p_values": np.asarray(P_VALUES),
            "error": sweep.errors(),
            "golden_error": sweep.golden_error,
            "table": table,
            "knee_p": fit.knee_p,
            "slope_flat": fit.slope_flat,
            "slope_steep": fit.slope_steep,
        },
    )

    # Finding F2: two clear regimes around a knee.
    assert fit.has_two_regimes
    assert sweep.points[0].mean_error < sweep.golden_error + 0.02
    assert sweep.points[-1].mean_error > sweep.golden_error + 0.15
