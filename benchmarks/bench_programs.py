"""Experiment E8 — fault injection beyond neural networks.

The paper: "BFI can be used to inject faults into programs other than
neural networks, with the only assumption being that of end-to-end
differentiability." We run the full BDLFI pipeline on three differentiable
programs — a PID control loop, an FIR detector, and a polynomial decision
function — sweeping flip probability and asserting the same qualitative
law (flat regime, then rising verdict-divergence) holds.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.programs import (
    FIRDetector,
    PIDController,
    PolynomialClassifier,
    make_filter_dataset,
    make_pid_dataset,
    make_polynomial_dataset,
)

P_VALUES = (1e-4, 1e-3, 1e-2, 1e-1)
SAMPLES = 80


def _programs():
    pid = PIDController()
    detector = FIRDetector()
    polynomial = PolynomialClassifier([0.5, -1.0, 0.0, 1.0])
    return {
        "pid-controller": (pid, *make_pid_dataset(pid, n=48, rng=0)),
        "fir-detector": (detector, *make_filter_dataset(detector, n=64, rng=1)),
        "polynomial": (polynomial, *make_polynomial_dataset(polynomial, n=96, rng=2)),
    }


def test_program_fault_injection(benchmark, results_writer):
    def run_all():
        rows = []
        for name, (program, inputs, labels) in _programs().items():
            injector = BayesianFaultInjector(
                program, inputs, labels, spec=TargetSpec.weights_and_biases(), seed=2019
            )
            errors = {}
            for p in P_VALUES:
                campaign = injector.forward_campaign(p, samples=SAMPLES)
                errors[p] = campaign.mean_error
            rows.append(
                {
                    "program": name,
                    "parameters": sum(param.size for _, param in injector.parameter_targets),
                    **{f"err%@p={p:g}": 100 * errors[p] for p in P_VALUES},
                }
            )
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\n=== E8: verdict divergence of faulted differentiable programs ===")
    print(format_table(rows))

    results_writer.write("E8_programs", {"rows": rows, "p_values": list(P_VALUES)})

    for row in rows:
        series = [row[f"err%@p={p:g}"] for p in P_VALUES]
        # Divergence grows with flip probability (allow small-sample noise)
        assert series[-1] > series[0] - 1.0
        assert series[-1] > 1.0  # faults do corrupt every program at p=0.1
        assert series[0] < 20.0  # and the low-p regime is comparatively benign
