"""Ablation A8 — margin-based runtime guarding (finding F1 as a mechanism).

Fault-induced misclassifications concentrate on low-confidence inputs
(F1). A deployment can exploit that: flag inputs whose top-2 logit margin
is below a calibrated threshold and route them to verified execution. The
coverage curve — fraction of fault flips captured vs fraction of traffic
flagged — quantifies the protection bought per unit of verification cost.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.protect import MarginGuard

FLIP_P = 1e-4
FLAG_FRACTIONS = (0.05, 0.1, 0.2, 0.4)
SAMPLES = 250


def test_margin_guard_coverage_curve(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )
    guard = MarginGuard(golden_mlp_moons)

    curve = benchmark.pedantic(
        lambda: guard.coverage_curve(
            eval_x,
            BernoulliBitFlipModel(FLIP_P),
            injector.parameter_targets,
            flag_fractions=FLAG_FRACTIONS,
            samples=SAMPLES,
            rng=0,
        ),
        rounds=1,
        iterations=1,
    )

    rows = [evaluation.summary_row() for evaluation in curve]
    print(f"\n=== A8: margin-guard coverage curve (Bernoulli p={FLIP_P}) ===")
    print(format_table(rows))
    print("captured% > flagged% == the guard beats random triage (finding F1)")

    results_writer.write("A8_margin_guard", {"rows": rows, "p": FLIP_P})

    for evaluation in curve:
        if np.isfinite(evaluation.capture_fraction):
            assert evaluation.capture_fraction >= evaluation.flagged_fraction - 0.02
    # At a modest 20% budget, the guard must capture meaningfully more.
    at_20 = curve[2]
    assert at_20.capture_fraction > at_20.flagged_fraction + 0.03
