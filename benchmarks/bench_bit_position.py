"""Ablation A1 — bit-position sensitivity.

Exhaustively flips every (element, bit) site of the MLP and aggregates SDC
and DUE rates per IEEE-754 bit lane: the mechanistic explanation for the
paper's two-regime curves (23 of 32 lanes are near-harmless mantissa bits;
high exponent bits are catastrophic).
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import ExhaustiveBitInjector
from repro.bits import bit_field
from repro.core import BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, TargetSpec


def test_bit_position_sensitivity(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = ExhaustiveBitInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    sensitivity = benchmark.pedantic(lambda: injector.run(), rounds=1, iterations=1)

    lane_rows = [
        {
            "bit": bit,
            "field": bit_field(bit),
            "sdc_rate": sensitivity.sdc_by_bit[bit],
            "due_rate": sensitivity.due_by_bit[bit],
        }
        for bit in sorted(sensitivity.sdc_by_bit)
    ]
    field_rows = sensitivity.field_table()

    print("\n=== A1: per-bit-lane SDC/DUE rates (exhaustive sweep) ===")
    print(format_table(field_rows))
    print()
    print(format_table(lane_rows[-12:]))  # the interesting high lanes

    results_writer.write("A1_bit_position", {"lanes": lane_rows, "fields": field_rows})

    fields = {row["field"]: row for row in field_rows}
    assert fields["exponent"]["sdc_rate"] + fields["exponent"]["due_rate"] > 5 * max(
        fields["mantissa"]["sdc_rate"], 1e-4
    )


def test_lane_restricted_campaigns_match_exhaustive_ordering(
    benchmark, golden_mlp_moons, moons_eval_batch, results_writer
):
    """Bernoulli campaigns restricted to each field reproduce the exhaustive
    ordering: exponent-only >> mantissa-only damage at equal p."""
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=11
    )
    p = 1e-3
    lanes = {
        "mantissa": tuple(range(0, 23)),
        "exponent": tuple(range(23, 31)),
        "sign": (31,),
        "all": None,
    }

    def run_all():
        return {
            name: injector.forward_campaign(
                p, samples=120, fault_model=BernoulliBitFlipModel(p, bits=bits), stream=f"lane:{name}"
            ).mean_error
            for name, bits in lanes.items()
        }

    errors = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [{"lanes": k, "mean_error_pct": 100 * v} for k, v in errors.items()]
    print("\n=== A1b: Bernoulli campaigns restricted to bit fields (p=1e-3) ===")
    print(format_table(rows))

    results_writer.write("A1b_lane_campaigns", {"rows": rows, "p": p})

    assert errors["exponent"] > errors["mantissa"]
    assert errors["all"] >= errors["mantissa"]
