"""Experiment E4 — Fig. 4: ResNet-18 classification error vs flip probability.

Same sweep as Fig. 2 on the ResNet-18: the golden-run error sits at a much
higher baseline, and the same two-regime shape must appear.
"""

import numpy as np

from repro.analysis import format_table, line_plot
from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.faults import TargetSpec

# NOTE on the p range: the knee of the error-vs-p curve sits where the
# expected number of catastrophic (high-exponent-bit) flips reaches O(1),
# i.e. near 1/#parameters. Our ResNet-18 keeps the paper's topology at
# reduced width (176k parameters vs 11M) *and* the paper's own axis is not
# reconcilable with per-bit Bernoulli faults over all 11M weights — so we
# sweep the range that exposes the full shape for this network:
# flat regime, knee, steep rise (see EXPERIMENTS.md, E4 discussion).
P_VALUES = tuple(np.logspace(-7.5, -2, 15))
SAMPLES_PER_POINT = 40


def test_fig4_resnet_error_vs_p(benchmark, golden_resnet_images, resnet_image_eval, results_writer):
    eval_x, eval_y = resnet_image_eval
    injector = BayesianFaultInjector(
        golden_resnet_images, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    sweep = benchmark.pedantic(
        lambda: ProbabilitySweep(
            injector, p_values=P_VALUES, samples=SAMPLES_PER_POINT, chains=2
        ).run(),
        rounds=1,
        iterations=1,
    )

    fit = sweep.fit_regimes(truncate_saturation=True)
    table = sweep.table()

    print("\n=== Fig. 4: error injections in all layers of ResNet-18 ===")
    print(format_table(table))
    print()
    print(
        line_plot(
            sweep.probabilities(),
            100 * sweep.errors(),
            log_x=True,
            title="Fig. 4 — ResNet-18 classification error (%) vs flip probability",
            x_label="flip probability p",
            y_label="% error (golden run dashed)",
            reference=100 * sweep.golden_error,
        )
    )
    print(f"\nTwo-regime fit: knee at p={fit.knee_p:.2e} (F-test p={fit.f_test_p:.2e})")

    results_writer.write(
        "E4_fig4_resnet_sweep",
        {
            "p_values": np.asarray(P_VALUES),
            "error": sweep.errors(),
            "golden_error": sweep.golden_error,
            "table": table,
            "knee_p": fit.knee_p,
        },
    )

    # Fig. 4's shape: elevated golden baseline + the same two regimes.
    assert sweep.golden_error > 0.10  # harder task than the MLP's
    assert fit.has_two_regimes
    assert sweep.points[-1].mean_error > sweep.golden_error + 0.1
