"""Golden networks for the benchmark harness.

Thin pytest-fixture layer over :mod:`repro.bench.workloads`, the shared
seed-pinned workload builders the ``repro bench`` runner uses too — one
definition of every golden network, one checkpoint cache. Trained weights
are cached under ``benchmarks/_artifacts`` (the first benchmark run trains,
later runs load checkpoints; delete the directory to retrain).

Experiment configurations (eval-batch sizes, dataset difficulty) are chosen
so the full benchmark suite regenerates every paper figure on one CPU in
minutes; see DESIGN.md §2 for why these substitutions preserve the paper's
findings.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import workloads
from repro.bench.workloads import MLP_IMAGE_CONFIG, RESNET_IMAGE_CONFIG  # noqa: F401 — re-export

ARTIFACTS = os.path.join(os.path.dirname(__file__), "_artifacts")


@pytest.fixture(scope="session")
def golden_mlp_moons():
    """Paper Fig. 1 MLP (32 hidden units) trained on two-moons."""
    return workloads.golden_mlp_moons(ARTIFACTS)


@pytest.fixture(scope="session")
def moons_eval_batch():
    return workloads.moons_eval_batch()


@pytest.fixture(scope="session")
def image_data_mlp():
    return workloads.mlp_image_data()


@pytest.fixture(scope="session")
def image_data_resnet():
    return workloads.resnet_image_data()


@pytest.fixture(scope="session")
def golden_mlp_images(image_data_mlp):
    """MLP classifier on the synthetic CIFAR-10 stand-in (Fig. 2 subject)."""
    return workloads.golden_mlp_images(cache_dir=ARTIFACTS, data=image_data_mlp)


@pytest.fixture(scope="session")
def golden_resnet_images(image_data_resnet):
    """ResNet-18 (reduced width, identical topology) on the synthetic
    CIFAR-10 stand-in (Figs. 3 and 4 subject)."""
    return workloads.golden_resnet_images(cache_dir=ARTIFACTS, data=image_data_resnet)


@pytest.fixture(scope="session")
def mlp_image_eval(image_data_mlp):
    """Evaluation batch for MLP image campaigns."""
    return workloads.mlp_image_eval(data=image_data_mlp)


@pytest.fixture(scope="session")
def resnet_image_eval(image_data_resnet):
    """Evaluation batch for ResNet campaigns (small: each campaign runs
    hundreds of forward passes)."""
    return workloads.resnet_image_eval(data=image_data_resnet)


@pytest.fixture(scope="session")
def results_writer():
    from repro.analysis import ResultWriter

    return ResultWriter(os.path.join(os.path.dirname(__file__), "..", "results"))
