"""Golden networks for the benchmark harness.

Training a golden network is step 1 of the BDLFI procedure and a fixed
cost, so trained weights are cached on disk under ``benchmarks/_artifacts``
— the first benchmark run trains (≈1 minute for the ResNet), later runs
load checkpoints. Delete the directory to retrain.

Experiment configurations (eval-batch sizes, dataset difficulty) are chosen
so the full benchmark suite regenerates every paper figure on one CPU in
minutes; see DESIGN.md §2 for why these substitutions preserve the paper's
findings.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, make_synthetic_images, SyntheticImageConfig, two_moons
from repro.nn import MLP, paper_mlp
from repro.nn.models import resnet18_cifar_small
from repro.train import Adam, Trainer, load_checkpoint, save_checkpoint

ARTIFACTS = os.path.join(os.path.dirname(__file__), "_artifacts")

#: MLP image task — low-dimensional (6×6) so the Fig. 2 MLP is small enough
#: that the flat fault regime is visible inside the swept p range (the knee
#: sits near 1/#catastrophic-bit-sites; see EXPERIMENTS.md), and easy enough
#: that the golden error lands in the paper's few-percent regime.
MLP_IMAGE_CONFIG = SyntheticImageConfig(image_size=6, noise=1.2, seed=11)
#: ResNet image task — harder distribution so the golden error sits at the
#: elevated baseline of Fig. 4.
RESNET_IMAGE_CONFIG = SyntheticImageConfig(image_size=12, noise=4.5, seed=11)


def _train_or_load(name: str, build, train_fn) -> tuple:
    """Train once and cache; returns (model, metadata)."""
    os.makedirs(ARTIFACTS, exist_ok=True)
    path = os.path.join(ARTIFACTS, f"{name}.npz")
    model = build()
    if os.path.exists(path):
        try:
            metadata = load_checkpoint(model, path)
            return model.eval(), metadata
        except Exception:
            # A truncated or otherwise unreadable checkpoint is a cache
            # miss, not a fatal error — retrain and overwrite it.
            os.remove(path)
    accuracy = train_fn(model)
    save_checkpoint(model, path, accuracy=accuracy)
    return model.eval(), {"accuracy": accuracy}


@pytest.fixture(scope="session")
def golden_mlp_moons():
    """Paper Fig. 1 MLP (32 hidden units) trained on two-moons."""

    def train(model):
        x, y = two_moons(800, noise=0.12, rng=0)
        loader = DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=1)
        result = Trainer(model, Adam(model.parameters(), lr=0.01)).fit(loader, epochs=50)
        return result.final_train_accuracy

    model, _ = _train_or_load("mlp_moons", lambda: paper_mlp(rng=0), train)
    return model


@pytest.fixture(scope="session")
def moons_eval_batch():
    x, y = two_moons(300, noise=0.12, rng=5)
    return x, y


@pytest.fixture(scope="session")
def image_data_mlp():
    return make_synthetic_images(MLP_IMAGE_CONFIG, 1500, 400)


@pytest.fixture(scope="session")
def image_data_resnet():
    return make_synthetic_images(RESNET_IMAGE_CONFIG, 2000, 400)


@pytest.fixture(scope="session")
def golden_mlp_images(image_data_mlp):
    """MLP classifier on the synthetic CIFAR-10 stand-in (Fig. 2 subject)."""
    train_set, test_set = image_data_mlp
    dim = int(np.prod(train_set.features.shape[1:]))

    def train(model):
        loader = DataLoader(train_set, batch_size=64, shuffle=True, rng=2)
        val = DataLoader(test_set, batch_size=200)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        result = trainer.fit(loader, epochs=20, val_loader=val)
        return result.final_val_accuracy

    model, _ = _train_or_load("mlp_images", lambda: MLP(dim, (8,), 10, rng=0), train)
    return model


@pytest.fixture(scope="session")
def golden_resnet_images(image_data_resnet):
    """ResNet-18 (reduced width, identical topology) on the synthetic
    CIFAR-10 stand-in (Figs. 3 and 4 subject)."""
    train_set, test_set = image_data_resnet

    def train(model):
        loader = DataLoader(train_set, batch_size=64, shuffle=True, rng=3)
        val = DataLoader(test_set, batch_size=200)
        trainer = Trainer(model, Adam(model.parameters(), lr=2e-3))
        result = trainer.fit(loader, epochs=8, val_loader=val)
        return result.final_val_accuracy

    model, _ = _train_or_load("resnet_images", lambda: resnet18_cifar_small(rng=0), train)
    return model


@pytest.fixture(scope="session")
def mlp_image_eval(image_data_mlp):
    """Evaluation batch for MLP image campaigns."""
    _, test_set = image_data_mlp
    return test_set.features[:200], test_set.labels[:200]


@pytest.fixture(scope="session")
def resnet_image_eval(image_data_resnet):
    """Evaluation batch for ResNet campaigns (small: each campaign runs
    hundreds of forward passes)."""
    _, test_set = image_data_resnet
    return test_set.features[:64], test_set.labels[:64]


@pytest.fixture(scope="session")
def results_writer():
    from repro.analysis import ResultWriter

    return ResultWriter(os.path.join(os.path.dirname(__file__), "..", "results"))
