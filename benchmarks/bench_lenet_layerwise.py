"""Experiment E9 — "other NNs": the layerwise study on LeNet.

The paper's Section III ends "We are currently investigating this behavior
on other NNs." LeNet is the canonical next subject in the FI literature
(Ares, TensorFI). We train it on the synthetic images and repeat the
Fig. 3 analysis: finding F3 should generalise — depth does not predict
vulnerability on LeNet either.
"""

import os

import numpy as np
from scipy import stats as sps

from repro.analysis import format_table
from repro.core import LayerwiseCampaign
from repro.data import DataLoader
from repro.nn import LeNet
from repro.train import Adam, Trainer, load_checkpoint, save_checkpoint

FLIP_P = 1e-4
SAMPLES_PER_LAYER = 30


def test_lenet_layerwise(benchmark, image_data_resnet, results_writer):
    # LeNet needs two 2x pooling stages, so it trains on the 12x12 ResNet
    # image set rather than the 6x6 MLP set.
    train_set, test_set = image_data_resnet
    artifacts = os.path.join(os.path.dirname(__file__), "_artifacts")
    os.makedirs(artifacts, exist_ok=True)
    path = os.path.join(artifacts, "lenet_images.npz")

    model = LeNet(in_channels=3, num_classes=10, image_size=12, rng=0)
    if os.path.exists(path):
        load_checkpoint(model, path)
    else:
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
        result = trainer.fit(
            DataLoader(train_set, batch_size=64, shuffle=True, rng=4),
            epochs=10,
            val_loader=DataLoader(test_set, batch_size=200),
        )
        save_checkpoint(model, path, accuracy=result.final_val_accuracy)
    model.eval()

    campaign = benchmark.pedantic(
        lambda: LayerwiseCampaign(
            model,
            test_set.features[:96],
            test_set.labels[:96],
            p=FLIP_P,
            samples=SAMPLES_PER_LAYER,
            chains=1,
            seed=2019,
        ).run(),
        rounds=1,
        iterations=1,
    )

    correlation = campaign.depth_correlation()
    table = campaign.table()
    sizes = np.asarray([row["parameters"] for row in table], dtype=float)
    errors = np.asarray([row["error_pct"] for row in table], dtype=float)
    size_correlation = sps.spearmanr(sizes, errors)

    print("\n=== E9: LeNet layer-by-layer injection (the paper's 'other NNs') ===")
    print(format_table(table, columns=["depth", "layer", "error_pct", "parameters"]))
    print(f"depth vs error: Spearman rho = {correlation['spearman_rho']:+.3f} "
          f"(p = {correlation['spearman_p']:.3f})")
    print(f"size  vs error: Spearman rho = {float(size_correlation.statistic):+.3f} "
          f"(p = {float(size_correlation.pvalue):.3f})")

    results_writer.write(
        "E9_lenet_layerwise",
        {
            "table": table,
            "depth_correlation": correlation,
            "size_spearman_rho": float(size_correlation.statistic),
            "p": FLIP_P,
        },
    )

    # F3 generalises: no significant monotone depth relationship.
    assert correlation["spearman_p"] > 0.01 or abs(correlation["spearman_rho"]) < 0.5
