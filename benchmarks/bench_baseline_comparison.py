"""Experiment E7 — BDLFI vs traditional fault injectors.

The paper argues BDLFI "can subsume current source-level and
debugger-level FIs". Under a matched single-bit fault model and a matched
outcome definition (SDC = any prediction changed vs the golden run,
finite outputs; DUE = non-finite outputs) we check:

1. agreement — BDLFI's conditional (K=1) SDC estimate vs the random
   injector's rate and the exhaustive sweep's ground truth;
2. budget — forward passes each method spends for its interval.
"""

import numpy as np

from repro.analysis import format_table
from repro.baselines import ExhaustiveBitInjector, RandomFaultInjector, compare_estimators, wilson_interval
from repro.core import BayesianFaultInjector, StratifiedErrorEstimator
from repro.faults import TargetSpec
from repro.faults.injection import apply_configuration
from repro.tensor import Tensor, no_grad

INJECTIONS = 600


def _bdlfi_single_flip_sdc(model, eval_x, injector, estimator, rng, n):
    """SDC count over n BDLFI draws from the K=1 conditional law, using the
    identical outcome taxonomy as the traditional injector."""
    x = Tensor(np.asarray(eval_x, dtype=np.float32))
    with no_grad():
        golden_predictions = model(x).data.argmax(axis=1)
    sdc = 0
    for _ in range(n):
        configuration = estimator.configuration_with_flips(1, rng)
        with apply_configuration(model, configuration), no_grad(), np.errstate(all="ignore"):
            logits = model(x).data
        finite = bool(np.isfinite(logits).all())
        changed = bool((logits.argmax(axis=1) != golden_predictions).any())
        if finite and changed:
            sdc += 1
    return sdc


def test_bdlfi_vs_traditional_fi(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    spec = TargetSpec.weights_and_biases()

    def run_all():
        random_fi = RandomFaultInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=1)
        random_campaign = random_fi.run(INJECTIONS)

        exhaustive = ExhaustiveBitInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=2)
        truth = exhaustive.run()  # full space: the ground-truth SDC rate

        injector = BayesianFaultInjector(golden_mlp_moons, eval_x, eval_y, spec=spec, seed=3)
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=1)
        bdlfi_hits = _bdlfi_single_flip_sdc(
            golden_mlp_moons, eval_x, injector, estimator, np.random.default_rng(4), INJECTIONS
        )
        return random_campaign, truth, bdlfi_hits

    random_campaign, truth, bdlfi_hits = benchmark.pedantic(run_all, rounds=1, iterations=1)

    total_sites = sum(truth.count_by_bit.values())
    truth_sdc_hits = int(round(sum(truth.sdc_by_bit[b] * truth.count_by_bit[b] for b in truth.sdc_by_bit)))
    truth_rate = truth_sdc_hits / total_sites

    random_hits = int(round(random_campaign.sdc_rate * len(random_campaign)))
    agreement_random = compare_estimators(
        "bdlfi(K=1)", bdlfi_hits, INJECTIONS, "random-fi", random_hits, len(random_campaign)
    )
    agreement_truth = compare_estimators(
        "bdlfi(K=1)", bdlfi_hits, INJECTIONS, "exhaustive", truth_sdc_hits, total_sites
    )

    rows = [
        {
            "method": "exhaustive sweep (ground truth)",
            "sdc_rate": truth_rate,
            "ci_lo": wilson_interval(truth_sdc_hits, total_sites)[0],
            "ci_hi": wilson_interval(truth_sdc_hits, total_sites)[1],
            "forward_passes": total_sites,
        },
        {
            "method": "random FI (Li et al. style)",
            "sdc_rate": random_campaign.sdc_rate,
            "ci_lo": random_campaign.sdc_interval()[0],
            "ci_hi": random_campaign.sdc_interval()[1],
            "forward_passes": len(random_campaign),
        },
        {
            "method": "BDLFI conditional K=1",
            "sdc_rate": bdlfi_hits / INJECTIONS,
            "ci_lo": wilson_interval(bdlfi_hits, INJECTIONS)[0],
            "ci_hi": wilson_interval(bdlfi_hits, INJECTIONS)[1],
            "forward_passes": INJECTIONS,
        },
    ]
    print("\n=== E7: single-bit SDC rate — BDLFI vs traditional injectors ===")
    print(format_table(rows))
    print(f"\nBDLFI vs random FI:   p={agreement_random.p_value:.3f} agree={agreement_random.agree}")
    print(f"BDLFI vs exhaustive:  p={agreement_truth.p_value:.3f} agree={agreement_truth.agree}")

    results_writer.write(
        "E7_baseline_comparison",
        {
            "rows": rows,
            "p_value_vs_random": agreement_random.p_value,
            "p_value_vs_truth": agreement_truth.p_value,
        },
    )

    assert agreement_random.agree
    assert agreement_truth.agree
