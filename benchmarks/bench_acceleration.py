"""Experiment E6 — advantage #2: algorithmic acceleration.

Compares the Hamming-weight-stratified estimator against plain Monte Carlo
in the rare-fault regime (small p). Two effects:

* **variance reduction** — plain MC wastes almost its whole budget on
  zero-flip draws at small p (and with substantial probability observes
  *no* faulty draw at all, reporting a degenerate zero-variance estimate);
  the stratified estimator spends every forward pass on informative
  configurations. We compare against the *analytic* plain-MC standard
  error, computed exactly from the stratified decomposition
  Var = Σₖ wₖ·(Var[e|k] + (E[e|k] − E[e])²), since the empirical plain-MC
  SE is itself unreliable in this regime.
* **amortisation** — the conditional estimates E[error | K=k] do not depend
  on p, so one stratum table serves the entire sweep.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector, StratifiedErrorEstimator
from repro.faults import TargetSpec

SMALL_P = (1e-5, 3e-5, 1e-4, 3e-4, 1e-3)
SAMPLES_PER_STRATUM = 60


def _plain_mc_theoretical_se(estimate, budget: int) -> float:
    """sqrt(Var[statistic]/n) for i.i.d. sampling, from the stratum table."""
    weights = np.asarray([estimate.stratum_weights[k] for k in sorted(estimate.stratum_weights)])
    means = np.asarray([estimate.stratum_means[k] for k in sorted(estimate.stratum_means)])
    variances = np.asarray(
        [
            float(np.var(estimate.stratum_samples[k], ddof=1)) if estimate.stratum_samples[k].size > 1 else 0.0
            for k in sorted(estimate.stratum_samples)
        ]
    )
    overall_mean = float((weights * means).sum() / weights.sum())
    variance = float((weights * (variances + (means - overall_mean) ** 2)).sum() / weights.sum())
    return float(np.sqrt(variance / budget))


def test_stratified_vs_plain_mc(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    def run_sweep():
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=SAMPLES_PER_STRATUM)
        return estimator, estimator.sweep(np.asarray(SMALL_P))

    estimator, estimates = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    total_bits = estimator.total_bits
    rows = []
    for estimate in estimates:
        budget = max(estimate.evaluations, SAMPLES_PER_STRATUM)
        plain = injector.forward_campaign(estimate.p, samples=budget, stream="plain-mc")
        informative = float((np.concatenate([c.flips for c in plain.chains.chains]) > 0).mean())
        rows.append(
            {
                "p": estimate.p,
                "stratified_pct": 100 * estimate.mean_error,
                "stratified_se_pct": 100 * estimate.std_error,
                "plain_mc_pct": 100 * plain.mean_error,
                "plain_mc_se_pct": 100 * _plain_mc_theoretical_se(estimate, budget),
                "mc_informative_frac": informative,
                "budget": budget,
            }
        )

    print("\n=== E6: stratified estimator vs plain Monte Carlo (small-p regime) ===")
    print(format_table(rows))
    print(
        f"\nTotal stratified evaluations across the {len(SMALL_P)}-point sweep: "
        f"{estimator.evaluations_spent} (conditional estimates shared across points; "
        f"fault space = {total_bits} bits)"
    )

    results_writer.write(
        "E6_acceleration",
        {"rows": rows, "total_stratified_evaluations": estimator.evaluations_spent},
    )

    # Amortisation: without sharing, each point would pay for all of its
    # non-trivial strata independently.
    unshared_cost = sum(
        (len(estimator.strata_for(p)[0]) - 1) * SAMPLES_PER_STRATUM for p in SMALL_P
    )
    assert estimator.evaluations_spent < unshared_cost

    # Variance reduction at the smallest p: stratified SE beats the analytic
    # plain-MC SE at matched budget, and plain MC mostly samples nothing.
    assert rows[0]["stratified_se_pct"] < rows[0]["plain_mc_se_pct"]
    assert rows[0]["mc_informative_frac"] < 0.5
