"""Ablation A7 — analytic moment propagation vs Monte Carlo campaigns.

The strongest form of the paper's "algorithmic acceleration": one
closed-form forward pass over (mean, variance) replaces a sampling
campaign. Two validations:

1. benign-lane regime (mantissa + sign; every flip delta finite and in
   scale) — the analytic prediction must *match* Monte Carlo;
2. full-lane regime — the analytic [lower, upper] bounds must *bracket*
   Monte Carlo, with the exact severe-flip probability splitting the mass.
"""

import numpy as np

from repro.analysis import format_table
from repro.core import BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.moments import MomentPropagator
from repro.utils.timing import Timer

BENIGN_LANES = tuple(range(0, 23)) + (31,)
P_VALUES = (1e-4, 1e-3, 1e-2)
MC_SAMPLES = 300


def test_moment_propagation_vs_monte_carlo(benchmark, golden_mlp_moons, moons_eval_batch, results_writer):
    eval_x, eval_y = moons_eval_batch
    injector = BayesianFaultInjector(
        golden_mlp_moons, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )

    def run_analytic():
        rows = []
        for p in P_VALUES:
            benign = MomentPropagator(golden_mlp_moons, p, bits=BENIGN_LANES).predict_error(eval_x, eval_y)
            full = MomentPropagator(golden_mlp_moons, p).predict_error(eval_x, eval_y)
            rows.append((p, benign, full))
        return rows

    analytic = benchmark.pedantic(run_analytic, rounds=1, iterations=1)

    table = []
    all_bracketed = True
    for p, benign, full in analytic:
        with Timer() as mc_timer:
            mc_benign = injector.forward_campaign(
                p, samples=MC_SAMPLES, fault_model=BernoulliBitFlipModel(p, bits=BENIGN_LANES),
                stream=f"benign:{p}",
            )
            mc_full = injector.forward_campaign(p, samples=MC_SAMPLES, stream=f"full:{p}")
        mc_seconds = mc_timer.elapsed
        bracketed = full.brackets(mc_full.mean_error)
        all_bracketed &= bracketed
        table.append(
            {
                "p": p,
                "benign_analytic_pct": 100 * benign.combined_error,
                "benign_mc_pct": 100 * mc_benign.mean_error,
                "full_bounds_pct": f"[{100 * full.error_lower:.2f}, {100 * full.error_upper:.2f}]",
                "full_mc_pct": 100 * mc_full.mean_error,
                "bracketed": str(bracketed),
                "mc_seconds": round(mc_seconds, 2),
            }
        )

    print("\n=== A7: analytic moment propagation vs Monte Carlo ===")
    print(format_table(table))
    print("(analytic cost: microseconds per point; campaigns re-run per point)")

    results_writer.write("A7_moments", {"rows": table})

    for row in table:
        assert abs(row["benign_analytic_pct"] - row["benign_mc_pct"]) < 2.0
    assert all_bracketed
