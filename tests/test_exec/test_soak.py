"""Kill-and-recover soak harness: the chaos acceptance contract, in-suite.

CI's ``chaos-smoke`` job runs ``python -m repro.exec.soak`` across several
seeds; this test pins one seed into the regular suite so the contract
(completion ⇒ bit-identity, degradation ⇒ exact accounting) cannot rot
between CI configurations.
"""

import json
import os

from repro.exec import chaos as chaos_mod
from repro.exec.soak import main, run_soak


class TestSoak:
    def test_one_full_soak_upholds_the_contract(self, tmp_path):
        report = run_soak(2019, str(tmp_path), workers=2)
        # run_soak raises SoakFailure on any violation; reaching here means
        # the contract held — sanity-check the report shape on top
        assert report["seed"] == 2019
        assert report["completed"] + report["failed"] == report["tasks"]
        assert report["rounds"], "at least one chaos round must have run"
        first = report["rounds"][0]
        assert first["chaos"], "round 0 must actually arm chaos sites"
        assert sum(first["fired"].values()) > 0, "armed chaos must fire"
        # chaos never leaks out of the harness
        assert chaos_mod.active() is None

    def test_cli_writes_report_and_artifacts(self, tmp_path):
        artifacts = str(tmp_path / "artifacts")
        exit_code = main(["--seeds", "1", "--seed-base", "2020", "--artifacts", artifacts])
        assert exit_code == 0
        with open(os.path.join(artifacts, "soak-report.json")) as handle:
            payload = json.load(handle)
        assert payload["failures"] == []
        assert len(payload["reports"]) == 1
        assert payload["reports"][0]["seed"] == 2020
