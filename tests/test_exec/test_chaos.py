"""Deterministic infrastructure chaos: plans, injection sites, recovery.

The executor/persist scenarios here arm real chaos plans against real
worker processes and real files; the core contract under test is the one
the soak harness enforces at scale — chaos decisions are deterministic
per seed, never touch campaign RNG streams, and every failure either
retries to a bit-identical result or lands in explicit accounting.
"""

import functools
import os

import numpy as np
import pytest

from repro.exec import (
    CampaignExecutionError,
    ChaosError,
    ChaosPlan,
    ChaosRule,
    ForwardSpec,
    InjectorRecipe,
    ParallelCampaignExecutor,
    chaos_enabled,
)
from repro.exec import chaos as chaos_mod
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.utils.persist import atomic_write_bytes

SPEC = ForwardSpec(p=1e-3, samples=12, chains=2)


@pytest.fixture()
def recipe(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return InjectorRecipe.from_model(
        trained_mlp,
        eval_x,
        eval_y,
        spec=TargetSpec.weights_and_biases(),
        seed=7,
        model_builder=functools.partial(paper_mlp, rng=0),
    )


@pytest.fixture(autouse=True)
def no_leaked_chaos():
    """Every test starts and ends with chaos off (process-global state)."""
    chaos_mod.uninstall()
    yield
    chaos_mod.uninstall()


class TestPlanValidation:
    def test_rate_bounds(self):
        with pytest.raises(ChaosError, match="rate"):
            ChaosRule(rate=1.5)
        with pytest.raises(ChaosError, match="rate"):
            ChaosRule(rate=-0.1)

    def test_count_bounds(self):
        with pytest.raises(ChaosError, match="count"):
            ChaosRule(rate=0.5, count=0)

    def test_unknown_site_rejected(self):
        with pytest.raises(ChaosError, match="unknown chaos site"):
            ChaosPlan.from_rates({"worker.meteor": 0.5})

    def test_parse_round_trip(self):
        plan = ChaosPlan.parse("worker.sigkill=0.3,journal.torn_tail=0.5:2", seed=9)
        assert plan.seed == 9
        assert plan.rule("worker.sigkill") == ChaosRule(rate=0.3)
        assert plan.rule("journal.torn_tail") == ChaosRule(rate=0.5, count=2)
        assert ChaosPlan.parse(plan.describe(), seed=9) == plan

    def test_parse_rejects_bad_syntax(self):
        with pytest.raises(ChaosError, match="site=rate"):
            ChaosPlan.parse("worker.sigkill")
        with pytest.raises(ChaosError):
            ChaosPlan.parse("worker.sigkill=lots")

    def test_plan_is_picklable(self):
        import pickle

        plan = ChaosPlan.parse("worker.sigkill=0.3", seed=1)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestDeterminism:
    def test_uniform_is_pure(self):
        a = chaos_mod.chaos_uniform(1, "worker.sigkill", (3, 1))
        b = chaos_mod.chaos_uniform(1, "worker.sigkill", (3, 1))
        assert a == b
        assert 0.0 <= a < 1.0
        assert a != chaos_mod.chaos_uniform(2, "worker.sigkill", (3, 1))
        assert a != chaos_mod.chaos_uniform(1, "worker.hang", (3, 1))

    def test_injector_decisions_replay_exactly(self):
        plan = ChaosPlan.from_rates({"pipe.drop": 0.5}, seed=4)
        first = [chaos_mod.ChaosInjector(plan).should_fire("pipe.drop", key=(i, 1))
                 for i in range(32)]
        second = [chaos_mod.ChaosInjector(plan).should_fire("pipe.drop", key=(i, 1))
                  for i in range(32)]
        assert first == second
        assert any(first) and not all(first)  # rate 0.5 actually discriminates

    def test_count_caps_total_fires(self):
        plan = ChaosPlan.from_rates({"pipe.drop": ChaosRule(rate=1.0, count=2)}, seed=0)
        injector = chaos_mod.ChaosInjector(plan)
        fires = [injector.should_fire("pipe.drop", key=(i, 1)) for i in range(10)]
        assert sum(fires) == 2 and fires[:2] == [True, True]
        assert injector.fired() == {"pipe.drop": 2}
        assert injector.visits() == {"pipe.drop": 10}

    def test_unknown_site_raises_at_decision_time(self):
        injector = chaos_mod.ChaosInjector(ChaosPlan())
        with pytest.raises(ChaosError, match="unknown"):
            injector.should_fire("worker.meteor")


class TestGlobalInstall:
    def test_off_by_default(self):
        assert chaos_mod.active() is None
        assert chaos_mod.should_fire("worker.sigkill") is False

    def test_scoped_enable(self):
        plan = ChaosPlan.from_rates({"pipe.drop": 1.0}, seed=0)
        with chaos_enabled(plan) as injector:
            assert chaos_mod.active() is injector
            assert chaos_mod.active_plan() is plan
            assert chaos_mod.should_fire("pipe.drop", key=0) is True
        assert chaos_mod.active() is None
        assert chaos_mod.should_fire("pipe.drop", key=0) is False

    def test_fired_events_count_into_metrics(self):
        import repro.obs as obs

        obs.configure(metrics=True)
        try:
            plan = ChaosPlan.from_rates({"pipe.drop": 1.0}, seed=0)
            with chaos_enabled(plan):
                chaos_mod.should_fire("pipe.drop", key=0)
                chaos_mod.should_fire("pipe.drop", key=1)
            snapshot = obs.metrics().snapshot()
            assert snapshot["counters"]["chaos.fired"] == 2
            assert snapshot["counters"]["chaos.fired.pipe.drop"] == 2
        finally:
            obs.reset()


class TestPersistSites:
    def test_disk_full_fires_and_cleans_tmp(self, tmp_path):
        target = tmp_path / "out.json"
        plan = ChaosPlan.from_rates({"disk.full": ChaosRule(rate=1.0, count=1)}, seed=0)
        with chaos_enabled(plan):
            with pytest.raises(OSError, match="No space left"):
                atomic_write_bytes(str(target), b"{}")
            # count exhausted: the retry inside the same plan succeeds
            atomic_write_bytes(str(target), b"{}")
        assert target.read_bytes() == b"{}"
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    @pytest.mark.parametrize("site,match", [
        ("persist.fsync", "fsync failed"),
        ("persist.replace", "rename failed"),
    ])
    def test_fsync_and_replace_fail_atomically(self, tmp_path, site, match):
        target = tmp_path / "out.json"
        atomic_write_bytes(str(target), b"old")
        plan = ChaosPlan.from_rates({site: ChaosRule(rate=1.0, count=1)}, seed=0)
        with chaos_enabled(plan):
            with pytest.raises(OSError, match=match):
                atomic_write_bytes(str(target), b"new")
        # the old file survives untouched — that's the atomicity contract
        assert target.read_bytes() == b"old"
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_free_when_off(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_bytes(str(target), b"fine")
        assert target.read_bytes() == b"fine"


class TestExecutorChaos:
    def test_sigkill_retries_to_bit_identical_result(self, recipe):
        baseline = ParallelCampaignExecutor(recipe, workers=1).run([SPEC])[0]
        # pick a seed where attempt 1 fires and attempt 2 does not — worker
        # processes are fresh per attempt, so the cap must come from the
        # per-attempt hash, not the (per-process) fire counter
        def fires(seed, attempt):
            return chaos_mod.chaos_uniform(seed, "worker.sigkill", (0, attempt)) < 0.5

        seed = next(s for s in range(1000) if fires(s, 1) and not fires(s, 2))
        plan = ChaosPlan.from_rates({"worker.sigkill": 0.5}, seed=seed)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, max_attempts=3, chaos=plan, start_method="fork"
        )
        result = executor.run([SPEC])[0]
        assert executor.stats.crashes >= 1
        assert executor.stats.retries_by_cause["crash"] >= 1
        assert np.array_equal(baseline.posterior.samples, result.posterior.samples)

    def test_pipe_drop_counts_as_chaos_retry(self, recipe):
        plan = ChaosPlan.from_rates({"pipe.drop": ChaosRule(rate=1.0, count=1)}, seed=0)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, max_attempts=3, chaos=plan, start_method="fork"
        )
        result = executor.run([SPEC])[0]
        assert result is not None
        assert executor.stats.pipe_drops == 1
        assert executor.stats.retries_by_cause["chaos"] == 1

    def test_pipe_duplicate_delivers_exactly_once(self, recipe):
        baseline = ParallelCampaignExecutor(recipe, workers=1).run([SPEC])[0]
        plan = ChaosPlan.from_rates(
            {"pipe.duplicate": ChaosRule(rate=1.0, count=1)}, seed=0
        )
        executor = ParallelCampaignExecutor(
            recipe, workers=2, chaos=plan, start_method="fork"
        )
        result = executor.run([SPEC])[0]
        assert executor.stats.pipe_duplicates == 1
        assert np.array_equal(baseline.posterior.samples, result.posterior.samples)

    def test_poison_task_aborts_by_default(self, recipe):
        plan = ChaosPlan.from_rates({"worker.sigkill": 1.0}, seed=0)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, max_attempts=2, chaos=plan, start_method="fork"
        )
        with pytest.raises(CampaignExecutionError, match="gave up"):
            executor.run([SPEC])

    def test_poison_task_quarantined_under_degrade(self, recipe):
        plan = ChaosPlan.from_rates({"worker.sigkill": 1.0}, seed=0)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, max_attempts=2, on_failure="degrade",
            chaos=plan, start_method="fork",
        )
        results = executor.run([SPEC, SPEC.with_p(2e-3)])
        assert results == [None, None]
        accounting = executor.stats.accounting()
        assert accounting["completed"] == 0
        assert accounting["failed"] == 2
        assert {f["index"] for f in accounting["failed_tasks"]} == {0, 1}
        assert all(f["cause"] == "crash" for f in accounting["failed_tasks"])
        summary = executor.stats.summary()
        assert "failed 2" in summary

    def test_chaos_uninstalled_after_execute(self, recipe):
        plan = ChaosPlan.from_rates({"pipe.drop": 0.1}, seed=0)
        executor = ParallelCampaignExecutor(recipe, workers=1, chaos=plan)
        executor.run([SPEC])
        assert chaos_mod.active() is None

    def test_backoff_delay_is_deterministic(self, recipe):
        executor = ParallelCampaignExecutor(recipe, workers=2, backoff_s=0.1)
        delays = [executor._backoff_delay(0, attempt) for attempt in (1, 2, 3)]
        assert delays == [executor._backoff_delay(0, attempt) for attempt in (1, 2, 3)]
        # exponential envelope with jitter in [0.5, 1.5)
        for attempt, delay in zip((1, 2, 3), delays):
            base = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * base <= delay < 1.5 * base
        assert ParallelCampaignExecutor(recipe, workers=2)._backoff_delay(0, 1) == 0.0


class TestConstructorValidation:
    def test_on_failure_validated(self, recipe):
        with pytest.raises(ValueError, match="on_failure"):
            ParallelCampaignExecutor(recipe, workers=1, on_failure="explode")

    def test_backoff_validated(self, recipe):
        with pytest.raises(ValueError, match="backoff"):
            ParallelCampaignExecutor(recipe, workers=1, backoff_s=-1.0)
