"""Campaign journal: durability, fingerprinting, and bit-identical resume."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.injector import BayesianFaultInjector
from repro.core.layerwise import LayerwiseCampaign
from repro.core.sweep import ProbabilitySweep
from repro.data import two_moons
from repro.exec import (
    CampaignJournal,
    ForwardSpec,
    InjectorRecipe,
    JournalError,
    JournalMismatchError,
    McmcSpec,
    ParallelCampaignExecutor,
    campaign_fingerprint,
    task_key,
)
from repro.exec.journal import decode_outcome, encode_outcome, spec_fingerprint
from repro.nn import paper_mlp

P_GRID = (1e-4, 1e-3, 1e-2, 5e-2)
SPEC = ForwardSpec(p=1e-4, samples=16, chains=2)
SEED = 11


@pytest.fixture(scope="module")
def setup():
    """Deterministic (model, eval batch): untrained but fully seeded."""
    model = paper_mlp(rng=0).eval()
    eval_x, eval_y = two_moons(60, noise=0.12, rng=1)
    return model, eval_x, eval_y


@pytest.fixture(scope="module")
def baseline(setup):
    """The uninterrupted sweep every resume scenario must reproduce."""
    model, eval_x, eval_y = setup
    injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
    return ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC).run()


def strip_durations(record: dict) -> dict:
    """Result record minus wall-clock fields (identical math, different clock)."""
    record = dict(record)
    record.pop("duration_s", None)
    # the metrics digest carries duration gauges/histograms alongside its
    # (deterministic) counters; counter parity has its own tests in test_obs
    record.pop("metrics", None)
    summary = dict(record.get("summary", {}))
    summary.pop("duration_s", None)
    summary.pop("evals_per_s", None)
    record["summary"] = summary
    return record


def assert_bit_identical(sweep_a, sweep_b):
    for pa, pb in zip(sweep_a.points, sweep_b.points):
        assert np.array_equal(pa.campaign.posterior.samples, pb.campaign.posterior.samples)
        assert strip_durations(pa.campaign.to_dict()) == strip_durations(pb.campaign.to_dict())


class TestJournalFile:
    def test_record_get_round_trip(self, tmp_path, baseline):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        campaign = baseline.points[0].campaign
        journal.record("k1", campaign)
        restored = journal.get("k1")
        assert np.array_equal(restored.posterior.samples, campaign.posterior.samples)
        assert restored.to_dict() == campaign.to_dict()
        assert "k1" in journal and len(journal) == 1
        assert journal.get("missing") is None

    def test_record_is_idempotent_and_durable(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        campaign = baseline.points[0].campaign
        journal.record("k1", campaign)
        journal.record("k1", campaign)  # duplicate: no second line
        journal.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 2  # header + one entry
        reopened = CampaignJournal(path)
        assert len(reopened) == 1

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            CampaignJournal.resume(str(tmp_path / "absent.jsonl"))

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CampaignJournal(path, fingerprint="aaaa" * 16).close()
        with pytest.raises(JournalMismatchError, match="different campaign"):
            CampaignJournal.resume(path, fingerprint="bbbb" * 16)
        # same fingerprint reopens fine
        CampaignJournal.resume(path, fingerprint="aaaa" * 16).close()

    def test_non_journal_file_rejected(self, tmp_path):
        path = str(tmp_path / "noise.jsonl")
        with open(path, "w") as handle:
            handle.write('{"something": "else"}\n')
        with pytest.raises(JournalError, match="not a campaign journal"):
            CampaignJournal(path)

    def test_newer_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w") as handle:
            handle.write('{"journal": "bdlfi-campaign-journal", "version": 99}\n')
        with pytest.raises(JournalError, match="newer"):
            CampaignJournal(path)

    def test_torn_tail_dropped(self, tmp_path, baseline):
        """A crash mid-append leaves a torn final line; replay drops it."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.record("k2", baseline.points[1].campaign)
        journal.close()
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) - 40])  # tear the last record
        reopened = CampaignJournal(path)
        assert len(reopened) == 1
        assert "k1" in reopened and "k2" not in reopened
        assert reopened.dropped_lines >= 1

    def test_corrupt_entry_checksum_skipped(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        entry["outcome"]["result"]["seed"] = 999  # flip content, keep sha
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n" + json.dumps(entry) + "\n")
        reopened = CampaignJournal(path)
        assert "k1" not in reopened
        assert reopened.dropped_lines == 1


class TestKeysAndFingerprints:
    def test_task_key_distinguishes_rng_coordinates(self):
        base = task_key(SPEC, seed=1)
        assert task_key(SPEC.with_p(2e-4), seed=1) != base
        assert task_key(SPEC, seed=2) != base
        assert task_key(McmcSpec(p=1e-4, chains=2, steps=8), seed=1) != base
        assert task_key(SPEC, seed=1, scope="x" * 16) != base
        assert task_key(SPEC, seed=1) == base

    def test_spec_fingerprint_tracks_content(self):
        assert spec_fingerprint(SPEC) == spec_fingerprint(ForwardSpec(p=1e-4, samples=16, chains=2))
        assert spec_fingerprint(SPEC) != spec_fingerprint(ForwardSpec(p=1e-4, samples=17, chains=2))

    def test_campaign_fingerprint_tracks_grid_and_seed(self):
        specs = [SPEC.with_p(p) for p in P_GRID]
        fp = campaign_fingerprint(specs, SEED)
        assert campaign_fingerprint(specs, SEED) == fp
        assert campaign_fingerprint(specs, SEED + 1) != fp
        assert campaign_fingerprint(specs[:-1], SEED) != fp

    def test_outcome_codec_handles_tempered_pairs(self, baseline):
        campaign = baseline.points[0].campaign
        pair = (campaign, 0.125)
        payload = encode_outcome(pair)
        assert payload["type"] == "tempered_pair"
        restored_campaign, weighted = decode_outcome(json.loads(json.dumps(payload)))
        assert weighted == 0.125
        assert restored_campaign.to_dict() == campaign.to_dict()

    def test_unjournalable_outcome_rejected(self):
        with pytest.raises(TypeError):
            encode_outcome(object())


class TestKillAndResume:
    """Truncate a journal mid-campaign, resume, and demand bit-identity."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_truncated_journal_resumes_bit_identically(self, tmp_path, setup, baseline, workers):
        model, eval_x, eval_y = setup
        path = str(tmp_path / f"sweep-{workers}.jsonl")
        specs = [SPEC.with_p(float(p)) for p in P_GRID]
        fingerprint = campaign_fingerprint(specs, SEED)

        # full journaled run, then truncate to header + 2 entries ("crash")
        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        journal = CampaignJournal(path, fingerprint=fingerprint)
        ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC, journal=journal).run()
        journal.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1 + len(P_GRID)
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")

        # resume with the requested worker count
        resumed_journal = CampaignJournal.resume(path, fingerprint=fingerprint)
        executor = None
        if workers > 1:
            recipe = InjectorRecipe.from_model(model, eval_x, eval_y, seed=SEED)
            executor = ParallelCampaignExecutor(recipe, workers=workers, journal=resumed_journal)
        resumed = ProbabilitySweep(
            BayesianFaultInjector(model, eval_x, eval_y, seed=SEED),
            p_values=P_GRID, spec=SPEC,
            executor=executor, journal=resumed_journal,
        ).run()
        if executor is not None:
            assert executor.stats.journal_hits == 2
        assert len(resumed_journal) == len(P_GRID)
        assert_bit_identical(baseline, resumed)

    def test_layerwise_resume_bit_identical(self, tmp_path, setup):
        model, eval_x, eval_y = setup
        kwargs = dict(p=5e-3, samples=12, chains=1, seed=SEED)
        uninterrupted = LayerwiseCampaign(model, eval_x, eval_y, **kwargs).run()

        path = str(tmp_path / "layers.jsonl")
        journal = CampaignJournal(path)
        LayerwiseCampaign(model, eval_x, eval_y, journal=journal, **kwargs).run()
        journal.close()
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:  # keep the first layer only
            handle.write("\n".join(lines[:2]) + "\n")

        resumed = LayerwiseCampaign(
            model, eval_x, eval_y, journal=CampaignJournal.resume(path), **kwargs
        ).run()
        for a, b in zip(uninterrupted.results, resumed.results):
            assert a.layer == b.layer
            assert np.array_equal(a.campaign.posterior.samples, b.campaign.posterior.samples)
            assert strip_durations(a.campaign.to_dict()) == strip_durations(b.campaign.to_dict())

    def test_sequential_journal_resumes_under_executor(self, tmp_path, setup, baseline):
        """Task keys are execution-mode independent: a journal written by the
        sequential path must satisfy a parallel executor, and vice versa."""
        model, eval_x, eval_y = setup
        path = str(tmp_path / "cross.jsonl")
        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        journal = CampaignJournal(path)
        ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC, journal=journal).run()
        journal.close()

        recipe = InjectorRecipe.from_model(model, eval_x, eval_y, seed=SEED)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, journal=CampaignJournal.resume(path)
        )
        resumed = ProbabilitySweep(
            injector, p_values=P_GRID, spec=SPEC, executor=executor
        ).run()
        assert executor.stats.journal_hits == len(P_GRID)
        assert_bit_identical(baseline, resumed)


_CHILD_SCRIPT = """
import sys, time
from repro.core.injector import BayesianFaultInjector
from repro.core.sweep import ProbabilitySweep
from repro.data import two_moons
from repro.exec import CampaignJournal, ForwardSpec
from repro.nn import paper_mlp

journal_path = sys.argv[1]

# Slow each campaign down so the parent can SIGKILL mid-sweep.
original_run = BayesianFaultInjector.run
def slow_run(self, spec):
    time.sleep(0.2)
    return original_run(self, spec)
BayesianFaultInjector.run = slow_run

model = paper_mlp(rng=0).eval()
eval_x, eval_y = two_moons(60, noise=0.12, rng=1)
injector = BayesianFaultInjector(model, eval_x, eval_y, seed={seed})
sweep = ProbabilitySweep(
    injector, p_values={p_grid!r},
    spec=ForwardSpec(p=1e-4, samples=16, chains=2),
    journal=CampaignJournal(journal_path),
)
print("child ready", flush=True)
sweep.run()
print("child finished", flush=True)
"""


class TestSigkillResume:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path, setup, baseline):
        """Hard-kill (SIGKILL) a journaled sweep mid-campaign; the journal
        must replay cleanly and the resumed sweep must match an
        uninterrupted run bit-for-bit."""
        model, eval_x, eval_y = setup
        path = str(tmp_path / "killed.jsonl")
        script = _CHILD_SCRIPT.format(seed=SEED, p_grid=P_GRID)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", script, path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            # wait until at least one campaign is durably journaled, then kill
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if os.path.exists(path) and len(open(path).read().splitlines()) >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail(f"child exited early:\n{child.stdout.read().decode()}")
                time.sleep(0.02)
            else:
                pytest.fail("child never journaled a campaign")
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
        assert child.returncode == -signal.SIGKILL

        journal = CampaignJournal.resume(path)
        completed_before_kill = len(journal)
        assert 1 <= completed_before_kill <= len(P_GRID)

        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        resumed = ProbabilitySweep(
            injector, p_values=P_GRID, spec=SPEC, journal=journal
        ).run()
        assert len(journal) == len(P_GRID)
        assert_bit_identical(baseline, resumed)
