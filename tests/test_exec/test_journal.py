"""Campaign journal: durability, fingerprinting, and bit-identical resume."""

import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.injector import BayesianFaultInjector
from repro.core.layerwise import LayerwiseCampaign
from repro.core.sweep import ProbabilitySweep
from repro.data import two_moons
from repro.exec import (
    CampaignJournal,
    ForwardSpec,
    InjectorRecipe,
    JournalError,
    JournalMismatchError,
    McmcSpec,
    ParallelCampaignExecutor,
    campaign_fingerprint,
    task_key,
)
from repro.exec.journal import decode_outcome, encode_outcome, spec_fingerprint
from repro.nn import paper_mlp

P_GRID = (1e-4, 1e-3, 1e-2, 5e-2)
SPEC = ForwardSpec(p=1e-4, samples=16, chains=2)
SEED = 11


@pytest.fixture(scope="module")
def setup():
    """Deterministic (model, eval batch): untrained but fully seeded."""
    model = paper_mlp(rng=0).eval()
    eval_x, eval_y = two_moons(60, noise=0.12, rng=1)
    return model, eval_x, eval_y


@pytest.fixture(scope="module")
def baseline(setup):
    """The uninterrupted sweep every resume scenario must reproduce."""
    model, eval_x, eval_y = setup
    injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
    return ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC).run()


def strip_durations(record: dict) -> dict:
    """Result record minus wall-clock fields (identical math, different clock)."""
    record = dict(record)
    record.pop("duration_s", None)
    # the metrics digest carries duration gauges/histograms alongside its
    # (deterministic) counters; counter parity has its own tests in test_obs
    record.pop("metrics", None)
    summary = dict(record.get("summary", {}))
    summary.pop("duration_s", None)
    summary.pop("evals_per_s", None)
    record["summary"] = summary
    return record


def assert_bit_identical(sweep_a, sweep_b):
    for pa, pb in zip(sweep_a.points, sweep_b.points):
        assert np.array_equal(pa.campaign.posterior.samples, pb.campaign.posterior.samples)
        assert strip_durations(pa.campaign.to_dict()) == strip_durations(pb.campaign.to_dict())


class TestJournalFile:
    def test_record_get_round_trip(self, tmp_path, baseline):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        campaign = baseline.points[0].campaign
        journal.record("k1", campaign)
        restored = journal.get("k1")
        assert np.array_equal(restored.posterior.samples, campaign.posterior.samples)
        assert restored.to_dict() == campaign.to_dict()
        assert "k1" in journal and len(journal) == 1
        assert journal.get("missing") is None

    def test_record_is_idempotent_and_durable(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        campaign = baseline.points[0].campaign
        journal.record("k1", campaign)
        journal.record("k1", campaign)  # duplicate: no second line
        journal.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 2  # header + one entry
        reopened = CampaignJournal(path)
        assert len(reopened) == 1

    def test_resume_requires_existing_file(self, tmp_path):
        with pytest.raises(JournalError, match="no journal"):
            CampaignJournal.resume(str(tmp_path / "absent.jsonl"))

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        CampaignJournal(path, fingerprint="aaaa" * 16).close()
        with pytest.raises(JournalMismatchError, match="different campaign"):
            CampaignJournal.resume(path, fingerprint="bbbb" * 16)
        # same fingerprint reopens fine
        CampaignJournal.resume(path, fingerprint="aaaa" * 16).close()

    def test_non_journal_file_rejected(self, tmp_path):
        path = str(tmp_path / "noise.jsonl")
        with open(path, "w") as handle:
            handle.write('{"something": "else"}\n')
        with pytest.raises(JournalError, match="not a campaign journal"):
            CampaignJournal(path)

    def test_newer_version_rejected(self, tmp_path):
        path = str(tmp_path / "future.jsonl")
        with open(path, "w") as handle:
            handle.write('{"journal": "bdlfi-campaign-journal", "version": 99}\n')
        with pytest.raises(JournalError, match="newer"):
            CampaignJournal(path)

    def test_torn_tail_dropped(self, tmp_path, baseline):
        """A crash mid-append leaves a torn final line; replay drops it."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.record("k2", baseline.points[1].campaign)
        journal.close()
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) - 40])  # tear the last record
        reopened = CampaignJournal(path)
        assert len(reopened) == 1
        assert "k1" in reopened and "k2" not in reopened
        assert reopened.dropped_lines >= 1

    def test_corrupt_entry_checksum_skipped(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        entry["outcome"]["result"]["seed"] = 999  # flip content, keep sha
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n" + json.dumps(entry) + "\n")
        reopened = CampaignJournal(path)
        assert "k1" not in reopened
        assert reopened.dropped_lines == 1


class TestSelfHealingJournal:
    """CRC, quarantine sidecar, atomic heal, and append rollback."""

    def test_corrupt_middle_record_does_not_drop_later_records(self, tmp_path, baseline):
        """One bad line costs exactly one task — no truncation amplification."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        for index in range(3):
            journal.record(f"k{index}", baseline.points[index].campaign)
        journal.close()
        lines = open(path).read().splitlines()
        lines[2] = lines[2][:40] + "####" + lines[2][44:]  # corrupt k1 mid-file
        with open(path, "w") as handle:
            handle.write("\n".join(lines) + "\n")
        reopened = CampaignJournal(path)
        assert "k0" in reopened and "k2" in reopened  # k2 survives the bad k1
        assert "k1" not in reopened
        assert reopened.quarantined and reopened.dropped_lines == 1

    def test_quarantine_sidecar_preserves_rejected_lines(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.close()
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[:-30])  # tear the only record
        reopened = CampaignJournal(path)
        assert reopened.quarantined == [(2, "torn tail")]
        sidecar = open(reopened.quarantine_path).read().splitlines()
        entry = json.loads(sidecar[0])
        assert entry["line"] == 2 and entry["reason"] == "torn tail"
        assert entry["raw"]  # the damaged bytes are kept for forensics

    def test_replay_heals_the_file_in_place(self, tmp_path, baseline):
        """After one recovery, the journal is clean — damage never compounds."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.record("k2", baseline.points[1].campaign)
        journal.close()
        text = open(path).read()
        with open(path, "w") as handle:
            handle.write(text[:-25])
        healed = CampaignJournal(path)
        assert healed.dropped_lines == 1
        # appending after the heal lands on a clean boundary
        healed.record("k2", baseline.points[1].campaign)
        healed.close()
        final = CampaignJournal(path)
        assert final.dropped_lines == 0 and "k1" in final and "k2" in final

    def test_crc_guards_entries(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        assert isinstance(entry["crc"], int)
        entry["crc"] ^= 1  # flip one CRC bit; sha untouched
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n" + json.dumps(entry) + "\n")
        reopened = CampaignJournal(path)
        assert "k1" not in reopened and reopened.quarantined == [(2, "checksum mismatch")]

    def test_legacy_entries_without_crc_still_replay(self, tmp_path, baseline):
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        journal.close()
        lines = open(path).read().splitlines()
        entry = json.loads(lines[1])
        del entry["crc"]
        with open(path, "w") as handle:
            handle.write(lines[0] + "\n" + json.dumps(entry) + "\n")
        reopened = CampaignJournal(path)
        assert "k1" in reopened and reopened.dropped_lines == 0

    def test_failed_append_rolls_back_and_raises(self, tmp_path, baseline):
        from repro.exec import ChaosPlan, chaos_enabled
        from repro.exec.journal import JournalWriteError

        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        journal.record("k1", baseline.points[0].campaign)
        size_before = os.path.getsize(path)
        plan = ChaosPlan.from_rates({"journal.fsync": 1.0}, seed=0)
        with chaos_enabled(plan):
            with pytest.raises(JournalWriteError, match="rolled back"):
                journal.record("k2", baseline.points[1].campaign)
        assert os.path.getsize(path) == size_before  # pre-append state restored
        assert journal.write_errors == 1 and "k2" not in journal
        # with chaos gone the same append succeeds on the clean boundary
        journal.record("k2", baseline.points[1].campaign)
        journal.close()
        reopened = CampaignJournal(path)
        assert "k1" in reopened and "k2" in reopened and reopened.dropped_lines == 0

    def test_chaos_torn_tail_recovers_on_resume(self, tmp_path, baseline):
        from repro.exec import ChaosPlan, chaos_enabled

        path = str(tmp_path / "j.jsonl")
        plan = ChaosPlan.from_rates({"journal.torn_tail": 1.0}, seed=0)
        journal = CampaignJournal(path)
        with chaos_enabled(plan):
            journal.record("k1", baseline.points[0].campaign)  # torn on disk
            journal.record("k2", baseline.points[1].campaign)  # torn on disk too
        # in-session, the in-memory entries are intact (only durability hurt)
        assert "k1" in journal and "k2" in journal
        journal.close()
        reopened = CampaignJournal(path)
        assert reopened.dropped_lines >= 1  # the tears are found and quarantined
        assert len(reopened) + reopened.dropped_lines >= 2  # nothing silently gone


class TestKeysAndFingerprints:
    def test_task_key_distinguishes_rng_coordinates(self):
        base = task_key(SPEC, seed=1)
        assert task_key(SPEC.with_p(2e-4), seed=1) != base
        assert task_key(SPEC, seed=2) != base
        assert task_key(McmcSpec(p=1e-4, chains=2, steps=8), seed=1) != base
        assert task_key(SPEC, seed=1, scope="x" * 16) != base
        assert task_key(SPEC, seed=1) == base

    def test_spec_fingerprint_tracks_content(self):
        assert spec_fingerprint(SPEC) == spec_fingerprint(ForwardSpec(p=1e-4, samples=16, chains=2))
        assert spec_fingerprint(SPEC) != spec_fingerprint(ForwardSpec(p=1e-4, samples=17, chains=2))

    def test_campaign_fingerprint_tracks_grid_and_seed(self):
        specs = [SPEC.with_p(p) for p in P_GRID]
        fp = campaign_fingerprint(specs, SEED)
        assert campaign_fingerprint(specs, SEED) == fp
        assert campaign_fingerprint(specs, SEED + 1) != fp
        assert campaign_fingerprint(specs[:-1], SEED) != fp

    def test_outcome_codec_handles_tempered_pairs(self, baseline):
        campaign = baseline.points[0].campaign
        pair = (campaign, 0.125)
        payload = encode_outcome(pair)
        assert payload["type"] == "tempered_pair"
        restored_campaign, weighted = decode_outcome(json.loads(json.dumps(payload)))
        assert weighted == 0.125
        assert restored_campaign.to_dict() == campaign.to_dict()

    def test_unjournalable_outcome_rejected(self):
        with pytest.raises(TypeError):
            encode_outcome(object())


class TestKillAndResume:
    """Truncate a journal mid-campaign, resume, and demand bit-identity."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_truncated_journal_resumes_bit_identically(self, tmp_path, setup, baseline, workers):
        model, eval_x, eval_y = setup
        path = str(tmp_path / f"sweep-{workers}.jsonl")
        specs = [SPEC.with_p(float(p)) for p in P_GRID]
        fingerprint = campaign_fingerprint(specs, SEED)

        # full journaled run, then truncate to header + 2 entries ("crash")
        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        journal = CampaignJournal(path, fingerprint=fingerprint)
        ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC, journal=journal).run()
        journal.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 1 + len(P_GRID)
        with open(path, "w") as handle:
            handle.write("\n".join(lines[:3]) + "\n")

        # resume with the requested worker count
        resumed_journal = CampaignJournal.resume(path, fingerprint=fingerprint)
        executor = None
        if workers > 1:
            recipe = InjectorRecipe.from_model(model, eval_x, eval_y, seed=SEED)
            executor = ParallelCampaignExecutor(recipe, workers=workers, journal=resumed_journal)
        resumed = ProbabilitySweep(
            BayesianFaultInjector(model, eval_x, eval_y, seed=SEED),
            p_values=P_GRID, spec=SPEC,
            executor=executor, journal=resumed_journal,
        ).run()
        if executor is not None:
            assert executor.stats.journal_hits == 2
        assert len(resumed_journal) == len(P_GRID)
        assert_bit_identical(baseline, resumed)

    def test_layerwise_resume_bit_identical(self, tmp_path, setup):
        model, eval_x, eval_y = setup
        kwargs = dict(p=5e-3, samples=12, chains=1, seed=SEED)
        uninterrupted = LayerwiseCampaign(model, eval_x, eval_y, **kwargs).run()

        path = str(tmp_path / "layers.jsonl")
        journal = CampaignJournal(path)
        LayerwiseCampaign(model, eval_x, eval_y, journal=journal, **kwargs).run()
        journal.close()
        lines = open(path).read().splitlines()
        with open(path, "w") as handle:  # keep the first layer only
            handle.write("\n".join(lines[:2]) + "\n")

        resumed = LayerwiseCampaign(
            model, eval_x, eval_y, journal=CampaignJournal.resume(path), **kwargs
        ).run()
        for a, b in zip(uninterrupted.results, resumed.results):
            assert a.layer == b.layer
            assert np.array_equal(a.campaign.posterior.samples, b.campaign.posterior.samples)
            assert strip_durations(a.campaign.to_dict()) == strip_durations(b.campaign.to_dict())

    def test_sequential_journal_resumes_under_executor(self, tmp_path, setup, baseline):
        """Task keys are execution-mode independent: a journal written by the
        sequential path must satisfy a parallel executor, and vice versa."""
        model, eval_x, eval_y = setup
        path = str(tmp_path / "cross.jsonl")
        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        journal = CampaignJournal(path)
        ProbabilitySweep(injector, p_values=P_GRID, spec=SPEC, journal=journal).run()
        journal.close()

        recipe = InjectorRecipe.from_model(model, eval_x, eval_y, seed=SEED)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, journal=CampaignJournal.resume(path)
        )
        resumed = ProbabilitySweep(
            injector, p_values=P_GRID, spec=SPEC, executor=executor
        ).run()
        assert executor.stats.journal_hits == len(P_GRID)
        assert_bit_identical(baseline, resumed)


_CHILD_SCRIPT = """
import sys, time
from repro.core.injector import BayesianFaultInjector
from repro.core.sweep import ProbabilitySweep
from repro.data import two_moons
from repro.exec import CampaignJournal, ForwardSpec
from repro.nn import paper_mlp

journal_path = sys.argv[1]

# Slow each campaign down so the parent can SIGKILL mid-sweep.
original_run = BayesianFaultInjector.run
def slow_run(self, spec):
    time.sleep(0.2)
    return original_run(self, spec)
BayesianFaultInjector.run = slow_run

model = paper_mlp(rng=0).eval()
eval_x, eval_y = two_moons(60, noise=0.12, rng=1)
injector = BayesianFaultInjector(model, eval_x, eval_y, seed={seed})
sweep = ProbabilitySweep(
    injector, p_values={p_grid!r},
    spec=ForwardSpec(p=1e-4, samples=16, chains=2),
    journal=CampaignJournal(journal_path),
)
print("child ready", flush=True)
sweep.run()
print("child finished", flush=True)
"""


class TestSigkillResume:
    def test_sigkilled_sweep_resumes_bit_identically(self, tmp_path, setup, baseline):
        """Hard-kill (SIGKILL) a journaled sweep mid-campaign; the journal
        must replay cleanly and the resumed sweep must match an
        uninterrupted run bit-for-bit."""
        model, eval_x, eval_y = setup
        path = str(tmp_path / "killed.jsonl")
        script = _CHILD_SCRIPT.format(seed=SEED, p_grid=P_GRID)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", script, path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            # wait until at least one campaign is durably journaled, then kill
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if os.path.exists(path) and len(open(path).read().splitlines()) >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail(f"child exited early:\n{child.stdout.read().decode()}")
                time.sleep(0.02)
            else:
                pytest.fail("child never journaled a campaign")
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
        assert child.returncode == -signal.SIGKILL

        journal = CampaignJournal.resume(path)
        completed_before_kill = len(journal)
        assert 1 <= completed_before_kill <= len(P_GRID)

        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        resumed = ProbabilitySweep(
            injector, p_values=P_GRID, spec=SPEC, journal=journal
        ).run()
        assert len(journal) == len(P_GRID)
        assert_bit_identical(baseline, resumed)

    def test_sigkilled_sweep_with_torn_record_resumes_bit_identically(
        self, tmp_path, setup, baseline
    ):
        """SIGKILL mid-sweep *and* tear the journal mid-record: the torn
        tail must be quarantined (not trusted, not fatal) and the resumed
        sweep must still match an uninterrupted run bit-for-bit."""
        model, eval_x, eval_y = setup
        path = str(tmp_path / "killed-torn.jsonl")
        script = _CHILD_SCRIPT.format(seed=SEED, p_grid=P_GRID)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        child = subprocess.Popen(
            [sys.executable, "-c", script, path],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if os.path.exists(path) and len(open(path).read().splitlines()) >= 2:
                    break
                if child.poll() is not None:
                    pytest.fail(f"child exited early:\n{child.stdout.read().decode()}")
                time.sleep(0.02)
            else:
                pytest.fail("child never journaled a campaign")
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
            child.stdout.close()
        assert child.returncode == -signal.SIGKILL

        # simulate the torn write the kernel can leave behind: the last
        # durable record loses its tail mid-line
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 40)

        journal = CampaignJournal.resume(path)
        assert journal.quarantined, "the torn record must be quarantined, not trusted"
        assert journal.dropped_lines == 1
        assert os.path.exists(journal.quarantine_path)

        injector = BayesianFaultInjector(model, eval_x, eval_y, seed=SEED)
        resumed = ProbabilitySweep(
            injector, p_values=P_GRID, spec=SPEC, journal=journal
        ).run()
        assert len(journal) == len(P_GRID)
        assert_bit_identical(baseline, resumed)
