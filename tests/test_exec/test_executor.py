"""ParallelCampaignExecutor: seed equivalence, crash retry, timeouts, fallback.

The crash/timeout scenarios run real worker processes (fork start method),
simulating worker death with ``os._exit`` inside the recipe's model builder
— the first build attempt kills the worker, later attempts succeed, so a
retried task must still produce the bit-identical campaign.
"""

import functools
import os
import time

import numpy as np
import pytest

from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.exec import (
    CampaignExecutionError,
    CampaignTask,
    ForwardSpec,
    InjectorRecipe,
    ParallelCampaignExecutor,
)
from repro.faults import TargetSpec
from repro.nn import paper_mlp

P_GRID_13 = tuple(np.logspace(-5, -1, 13))


def _crash_once_builder(marker_path: str):
    """Kill the worker on the first build; behave normally afterwards."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w", encoding="utf-8"):
            pass
        os._exit(3)
    return paper_mlp(rng=0)


def _sleepy_builder(delay_s: float):
    time.sleep(delay_s)
    return paper_mlp(rng=0)


@pytest.fixture()
def recipe(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return InjectorRecipe.from_model(
        trained_mlp,
        eval_x,
        eval_y,
        spec=TargetSpec.weights_and_biases(),
        seed=7,
        model_builder=functools.partial(paper_mlp, rng=0),
    )


@pytest.fixture()
def make_injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval

    def make():
        return BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=7
        )

    return make


class TestRecipe:
    def test_requires_exactly_one_transport(self, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError, match="exactly one"):
            InjectorRecipe(inputs=eval_x, labels=eval_y)
        with pytest.raises(ValueError, match="exactly one"):
            InjectorRecipe(
                inputs=eval_x, labels=eval_y, model=object(), model_builder=lambda: None
            )

    def test_state_only_with_builder(self, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError, match="state"):
            InjectorRecipe(inputs=eval_x, labels=eval_y, model=object(), state={})

    def test_builder_transport_rebuilds_golden_model(self, recipe, make_injector):
        rebuilt = recipe.build()
        assert rebuilt.golden_error == make_injector().golden_error

    def test_embedded_model_transport(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        recipe = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=7
        )
        assert recipe.model is trained_mlp
        assert recipe.build().golden_error >= 0.0


class TestConstruction:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelCampaignExecutor(workers=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelCampaignExecutor(workers=1, timeout_s=0.0)

    def test_max_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            ParallelCampaignExecutor(workers=1, max_attempts=0)

    def test_run_requires_a_recipe(self):
        with pytest.raises(ValueError, match="recipe"):
            ParallelCampaignExecutor(workers=1).run([ForwardSpec(p=1e-3)])

    def test_execute_rejects_non_specs(self, recipe):
        task = CampaignTask("forward", recipe)
        with pytest.raises(TypeError, match="CampaignSpec"):
            ParallelCampaignExecutor(workers=1).execute([task])

    def test_empty_task_list(self, recipe):
        assert ParallelCampaignExecutor(recipe, workers=2).execute([]) == []


class TestSequentialPath:
    def test_workers_1_matches_injector_run(self, recipe, make_injector):
        spec = ForwardSpec(p=1e-2, samples=24)
        executor = ParallelCampaignExecutor(recipe, workers=1)
        (via_executor,) = executor.run([spec])
        via_injector = make_injector().run(spec)
        assert np.array_equal(via_executor.chains.matrix(), via_injector.chains.matrix())
        assert not executor.stats.parallel

    def test_recipe_built_once_across_tasks(self, recipe):
        specs = [ForwardSpec(p=p, samples=8) for p in (1e-3, 1e-2)]
        executor = ParallelCampaignExecutor(recipe, workers=1)
        results = executor.run(specs)
        assert [r.flip_probability for r in results] == [1e-3, 1e-2]


class TestSeedEquivalence:
    def test_13_point_sweep_bit_identical_at_workers_4(self, recipe, make_injector):
        """The acceptance criterion: parallel sweep == sequential sweep, bitwise."""
        sequential = ProbabilitySweep(make_injector(), p_values=P_GRID_13, samples=16).run()
        executor = ParallelCampaignExecutor(recipe, workers=4)
        parallel = ProbabilitySweep(
            make_injector(), p_values=P_GRID_13, samples=16, executor=executor
        ).run()
        assert executor.stats.parallel and executor.stats.tasks == 13
        for seq_pt, par_pt in zip(sequential.points, parallel.points):
            seq_row = seq_pt.campaign.summary_row()
            par_row = par_pt.campaign.summary_row()
            # duration_s (and the rate derived from it) is wall-clock and
            # legitimately differs between runs
            for row in (seq_row, par_row):
                row.pop("duration_s")
                row.pop("evals_per_s")
            assert seq_row == par_row
            assert np.array_equal(
                seq_pt.campaign.chains.matrix(), par_pt.campaign.chains.matrix()
            )
            assert np.array_equal(
                seq_pt.campaign.posterior.samples, par_pt.campaign.posterior.samples
            )

    def test_task_order_is_preserved(self, recipe):
        p_values = (1e-4, 1e-3, 1e-2, 1e-1)
        executor = ParallelCampaignExecutor(recipe, workers=4)
        results = executor.run([ForwardSpec(p=p, samples=8) for p in p_values])
        assert [r.flip_probability for r in results] == list(p_values)


class TestLayerwiseParallel:
    def test_layerwise_parallel_matches_sequential(self, trained_mlp, moons_eval):
        from repro.core import LayerwiseCampaign

        eval_x, eval_y = moons_eval
        sequential = LayerwiseCampaign(
            trained_mlp, eval_x, eval_y, p=1e-2, samples=16, seed=3
        ).run()
        parallel = LayerwiseCampaign(
            trained_mlp, eval_x, eval_y, p=1e-2, samples=16, seed=3,
            executor=ParallelCampaignExecutor(workers=2),
            model_builder=functools.partial(paper_mlp, rng=0),
        ).run()
        assert [r.layer for r in parallel.results] == [r.layer for r in sequential.results]
        for seq_r, par_r in zip(sequential.results, parallel.results):
            assert seq_r.mean_error == par_r.mean_error
            assert seq_r.parameter_count == par_r.parameter_count
            assert np.array_equal(
                seq_r.campaign.chains.matrix(), par_r.campaign.chains.matrix()
            )


class TestFaultTolerance:
    def test_worker_crash_is_retried(self, trained_mlp, moons_eval, tmp_path, make_injector):
        eval_x, eval_y = moons_eval
        crashy = InjectorRecipe.from_model(
            trained_mlp,
            eval_x,
            eval_y,
            spec=TargetSpec.weights_and_biases(),
            seed=7,
            model_builder=functools.partial(_crash_once_builder, str(tmp_path / "marker")),
        )
        spec = ForwardSpec(p=1e-2, samples=16)
        executor = ParallelCampaignExecutor(crashy, workers=2, max_attempts=3)
        (result,) = executor.run([spec])
        assert executor.stats.crashes >= 1
        assert executor.stats.retries >= 1
        # the retried campaign is still bit-identical to an untroubled run
        reference = make_injector().run(spec)
        assert np.array_equal(result.chains.matrix(), reference.chains.matrix())

    def test_attempts_are_bounded(self, trained_mlp, moons_eval, tmp_path):
        eval_x, eval_y = moons_eval

        def always_crash():
            os._exit(3)

        doomed = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7, model_builder=always_crash
        )
        executor = ParallelCampaignExecutor(doomed, workers=2, max_attempts=2)
        with pytest.raises(CampaignExecutionError, match="gave up after 2"):
            executor.run([ForwardSpec(p=1e-2, samples=8)])

    def test_timeout_terminates_and_raises(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        sleepy = InjectorRecipe.from_model(
            trained_mlp,
            eval_x,
            eval_y,
            seed=7,
            model_builder=functools.partial(_sleepy_builder, 30.0),
        )
        executor = ParallelCampaignExecutor(
            sleepy, workers=2, timeout_s=0.25, max_attempts=2
        )
        started = time.perf_counter()
        with pytest.raises(CampaignExecutionError, match="timed out"):
            executor.run([ForwardSpec(p=1e-2, samples=8)])
        assert time.perf_counter() - started < 10.0
        assert executor.stats.timeouts == 2

    def test_deterministic_campaign_errors_propagate_without_retry(
        self, trained_mlp, moons_eval
    ):
        eval_x, eval_y = moons_eval
        misaligned = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y[:-1], seed=7,
            model_builder=functools.partial(paper_mlp, rng=0),
        )
        executor = ParallelCampaignExecutor(misaligned, workers=2, max_attempts=3)
        with pytest.raises(CampaignExecutionError, match="failed in worker"):
            executor.run([ForwardSpec(p=1e-2, samples=8)])
        assert executor.stats.retries == 0


class TestRetryAccounting:
    """Satellite: retries broken out by cause, with exact metrics parity."""

    def test_crash_retries_attributed_to_cause(self, trained_mlp, moons_eval, tmp_path):
        eval_x, eval_y = moons_eval
        crashy = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7,
            model_builder=functools.partial(_crash_once_builder, str(tmp_path / "m")),
        )
        executor = ParallelCampaignExecutor(crashy, workers=2, max_attempts=3)
        executor.run([ForwardSpec(p=1e-2, samples=16)])
        stats = executor.stats
        assert stats.retries_by_cause["crash"] >= 1
        assert stats.retries_by_cause["timeout"] == 0
        assert stats.retries_by_cause["chaos"] == 0
        assert stats.retries == sum(stats.retries_by_cause.values())
        assert "retries" in stats.summary() and "crash" in stats.summary()

    def test_timeout_retries_attributed_to_cause(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        sleepy = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7,
            model_builder=functools.partial(_sleepy_builder, 30.0),
        )
        executor = ParallelCampaignExecutor(sleepy, workers=2, timeout_s=0.25, max_attempts=2)
        with pytest.raises(CampaignExecutionError):
            executor.run([ForwardSpec(p=1e-2, samples=8)])
        assert executor.stats.retries_by_cause["timeout"] == 1
        assert executor.stats.retries == 1

    def test_metrics_match_stats_exactly(self, trained_mlp, moons_eval, tmp_path):
        import repro.obs as obs

        eval_x, eval_y = moons_eval
        crashy = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7,
            model_builder=functools.partial(_crash_once_builder, str(tmp_path / "m")),
        )
        obs.configure(metrics=True)
        try:
            executor = ParallelCampaignExecutor(crashy, workers=2, max_attempts=3)
            executor.run([ForwardSpec(p=1e-2, samples=16)])
            counters = obs.metrics().snapshot()["counters"]
            stats = executor.stats
            assert counters["executor.retries"] == stats.retries
            for cause, count in stats.retries_by_cause.items():
                assert counters.get(f"executor.retries.{cause}", 0) == count
            assert counters["executor.crashes"] == stats.crashes
            assert counters.get("executor.failed", 0) == stats.failed == 0
        finally:
            obs.reset()


class TestDegradedExecution:
    def test_degrade_quarantines_instead_of_aborting(self, trained_mlp, moons_eval, recipe):
        eval_x, eval_y = moons_eval

        def always_crash():
            os._exit(3)

        doomed = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7, model_builder=always_crash
        )
        good_spec = ForwardSpec(p=1e-2, samples=12)
        executor = ParallelCampaignExecutor(
            workers=2, max_attempts=2, on_failure="degrade"
        )
        results = executor.execute(
            [CampaignTask(good_spec, recipe), CampaignTask(good_spec, doomed)]
        )
        assert results[0] is not None and results[1] is None
        accounting = executor.stats.accounting()
        assert accounting["tasks"] == 2
        assert accounting["completed"] == 1 and accounting["failed"] == 1
        (failure,) = accounting["failed_tasks"]
        assert failure["index"] == 1 and failure["cause"] == "crash"
        assert failure["attempts"] == 2

    def test_degrade_sequential_deterministic_error(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        misaligned = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y[:-1], seed=7,
            model_builder=functools.partial(paper_mlp, rng=0),
        )
        executor = ParallelCampaignExecutor(misaligned, workers=1, on_failure="degrade")
        results = executor.run([ForwardSpec(p=1e-2, samples=8)])
        assert results == [None]
        (failure,) = executor.stats.failed_tasks
        assert failure.cause == "error" and failure.attempts == 1

    def test_degraded_sweep_reports_failed_points(self, trained_mlp, moons_eval):
        from repro.core import BayesianFaultInjector, ProbabilitySweep
        from repro.exec import ChaosPlan

        eval_x, eval_y = moons_eval
        recipe = InjectorRecipe.from_model(
            trained_mlp, eval_x, eval_y, seed=7,
            model_builder=functools.partial(paper_mlp, rng=0),
        )
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=7)
        # every worker attempt dies: all points fail, accounting must tile
        plan = ChaosPlan.from_rates({"worker.sigkill": 1.0}, seed=0)
        executor = ParallelCampaignExecutor(
            recipe, workers=2, max_attempts=2, on_failure="degrade", chaos=plan,
            start_method="fork",
        )
        sweep = ProbabilitySweep(
            injector, p_values=(1e-3, 1e-2), spec=ForwardSpec(p=1e-3, samples=8),
            executor=executor,
        ).run()
        assert sweep.degraded and not sweep.points
        accounting = sweep.accounting()
        assert accounting["points"] == 2
        assert accounting["completed"] == 0 and accounting["failed"] == 2
        assert [entry["p"] for entry in accounting["failed_points"]] == [1e-3, 1e-2]
        assert all(entry["cause"] == "crash" for entry in accounting["failed_points"])
