"""BayesianFaultInjector.run(spec): dispatch, timing, and the deprecated paths."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector, ProbabilitySweep
from repro.exec import ForwardSpec, McmcSpec, StratifiedSpec, TemperedSpec
from repro.faults import TargetSpec


@pytest.fixture()
def make_injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval

    def make(seed=0):
        return BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=seed
        )

    return make


class TestRunDispatch:
    def test_rejects_non_specs(self, make_injector):
        with pytest.raises(TypeError, match="CampaignSpec"):
            make_injector().run("forward")

    def test_forward_spec_matches_wrapper(self, make_injector):
        via_wrapper = make_injector().forward_campaign(1e-2, samples=40, chains=2)
        via_spec = make_injector().run(ForwardSpec(p=1e-2, samples=40, chains=2))
        assert np.array_equal(via_wrapper.chains.matrix(), via_spec.chains.matrix())
        assert via_wrapper.mean_error == via_spec.mean_error

    def test_mcmc_spec_matches_wrapper(self, make_injector):
        via_wrapper = make_injector().mcmc_campaign(1e-2, chains=2, steps=30)
        via_spec = make_injector().run(McmcSpec(p=1e-2, chains=2, steps=30))
        assert np.array_equal(via_wrapper.chains.matrix(), via_spec.chains.matrix())

    def test_tempered_spec_returns_weighted_pair(self, make_injector):
        outcome = make_injector().run(TemperedSpec(p=1e-2, beta=5.0, chains=2, steps=30))
        campaign, weighted = outcome
        assert campaign.method.startswith("tempered")
        assert 0.0 <= weighted <= 1.0

    def test_stratified_spec_runs(self, make_injector):
        campaign = make_injector().run(StratifiedSpec(p=1e-4, samples_per_stratum=5))
        assert campaign.method == "stratified"

    def test_duration_recorded(self, make_injector):
        campaign = make_injector().run(ForwardSpec(p=1e-2, samples=30))
        assert campaign.duration_s > 0.0
        row = campaign.summary_row()
        assert row["duration_s"] == campaign.duration_s
        assert campaign.to_dict()["duration_s"] == campaign.duration_s
        assert np.isfinite(campaign.evaluations_per_second)


class TestSweepSpecAPI:
    def test_default_is_forward_spec(self, make_injector):
        sweep = ProbabilitySweep(make_injector(), p_values=(1e-3, 1e-2), samples=20)
        assert isinstance(sweep.spec, ForwardSpec)
        assert sweep.spec.samples == 20

    def test_template_spec_rebound_per_point(self, make_injector):
        sweep = ProbabilitySweep(
            make_injector(), p_values=(1e-3, 1e-2), spec=ForwardSpec(p=0.5, samples=20)
        )
        assert [s.p for s in map(sweep.spec_for, sweep.p_values)] == [1e-3, 1e-2]

    def test_spec_factory_called_per_point(self, make_injector):
        factory = lambda p: ForwardSpec(p=p, samples=10 if p < 5e-3 else 20)
        sweep = ProbabilitySweep(make_injector(), p_values=(1e-3, 1e-2), spec=factory).run()
        assert sweep.points[0].campaign.total_evaluations == 10
        assert sweep.points[1].campaign.total_evaluations == 20

    def test_sweep_reports_durations(self, make_injector):
        sweep = ProbabilitySweep(make_injector(), p_values=(1e-3, 1e-2), samples=20).run()
        assert (sweep.durations() > 0).all()
        assert all(row["duration_s"] > 0 for row in sweep.table())


class TestDeprecatedMethodStrings:
    @pytest.mark.parametrize("method", ["forward", "mcmc", "stratified"])
    def test_strings_warn_but_work(self, make_injector, method):
        with pytest.warns(DeprecationWarning, match="method=.*deprecated"):
            sweep = ProbabilitySweep(
                make_injector(), p_values=(1e-3, 1e-2), samples=24, method=method
            )
        sweep.run()
        assert len(sweep.points) == 2

    def test_string_path_equals_spec_path(self, make_injector):
        with pytest.warns(DeprecationWarning):
            legacy = ProbabilitySweep(
                make_injector(), p_values=(1e-3, 1e-2), samples=24, method="forward"
            ).run()
        modern = ProbabilitySweep(
            make_injector(), p_values=(1e-3, 1e-2), spec=ForwardSpec(p=1e-3, samples=24)
        ).run()
        for a, b in zip(legacy.points, modern.points):
            assert np.array_equal(a.campaign.chains.matrix(), b.campaign.chains.matrix())

    def test_unknown_method_rejected(self, make_injector):
        with pytest.raises(ValueError, match="unknown sweep method"):
            ProbabilitySweep(make_injector(), method="exact")

    def test_method_and_spec_are_mutually_exclusive(self, make_injector):
        with pytest.raises(ValueError, match="not both"):
            ProbabilitySweep(
                make_injector(), method="forward", spec=ForwardSpec(p=1e-3)
            )
