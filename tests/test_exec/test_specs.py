"""CampaignSpec family: construction-time validation and dispatch metadata."""

import pickle

import pytest

from repro.exec import (
    AdaptiveSpec,
    CampaignSpec,
    ForwardSpec,
    McmcSpec,
    METHOD_SPECS,
    StratifiedSpec,
    TemperedSpec,
    TemperingSpec,
    spec_from_method,
)

ALL_SPECS = (ForwardSpec, McmcSpec, TemperedSpec, TemperingSpec, AdaptiveSpec, StratifiedSpec)


class TestValidation:
    def test_base_class_is_abstract(self):
        with pytest.raises(TypeError):
            CampaignSpec(p=1e-3)

    @pytest.mark.parametrize("spec_type", ALL_SPECS)
    @pytest.mark.parametrize("p", [0.0, -1e-3, 1.5])
    def test_p_out_of_range_rejected(self, spec_type, p):
        with pytest.raises(ValueError, match="flip probability"):
            spec_type(p=p)

    @pytest.mark.parametrize("spec_type", ALL_SPECS)
    def test_valid_p_accepted(self, spec_type):
        assert spec_type(p=1e-3).p == 1e-3

    def test_forward_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ForwardSpec(p=1e-3, samples=0)
        with pytest.raises(ValueError):
            ForwardSpec(p=1e-3, chains=0)

    def test_mcmc_proposal_weights(self):
        with pytest.raises(ValueError, match="toggle_weight/resample_weight"):
            McmcSpec(p=1e-3, toggle_weight=0.0, resample_weight=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            McmcSpec(p=1e-3, toggle_weight=-0.1)

    def test_mcmc_discard_fraction_range(self):
        with pytest.raises(ValueError):
            McmcSpec(p=1e-3, discard_fraction=1.0)

    def test_tempered_beta_non_negative(self):
        with pytest.raises(ValueError, match="beta"):
            TemperedSpec(p=1e-3, beta=-1.0)

    def test_tempering_needs_a_ladder(self):
        with pytest.raises(ValueError, match="rungs"):
            TemperingSpec(p=1e-3, betas=(0.0,))
        with pytest.raises(ValueError, match="non-negative"):
            TemperingSpec(p=1e-3, betas=(0.0, -5.0))

    def test_adaptive_step_budget_ordering(self):
        with pytest.raises(ValueError, match="max_steps"):
            AdaptiveSpec(p=1e-3, batch_steps=100, max_steps=50)

    def test_stratified_mass_tolerance(self):
        with pytest.raises(ValueError, match="mass_tolerance"):
            StratifiedSpec(p=1e-3, mass_tolerance=0.0)


class TestSpecBehaviour:
    def test_kind_default_stream(self):
        assert ForwardSpec(p=1e-3).stream == "forward"
        assert McmcSpec(p=1e-3).stream == "mcmc"
        assert StratifiedSpec(p=1e-3).stream == "stratified"

    def test_custom_stream_preserved(self):
        assert ForwardSpec(p=1e-3, stream="lane-a").stream == "lane-a"

    def test_numpy_p_normalised_to_float(self):
        # repr(p) feeds RNG stream names, so numpy scalars must not survive
        import numpy as np

        spec = ForwardSpec(p=np.float64(1e-3))
        assert type(spec.p) is float
        assert spec == ForwardSpec(p=1e-3)

    def test_with_p_rebinds_only_p(self):
        template = ForwardSpec(p=1e-3, samples=77, chains=3)
        rebound = template.with_p(1e-2)
        assert rebound.p == 1e-2
        assert rebound.samples == 77 and rebound.chains == 3
        assert template.p == 1e-3  # frozen: original untouched

    def test_with_p_validates(self):
        with pytest.raises(ValueError):
            ForwardSpec(p=1e-3).with_p(2.0)

    @pytest.mark.parametrize("spec_type", ALL_SPECS)
    def test_specs_are_picklable(self, spec_type):
        spec = spec_type(p=1e-3)
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("spec_type", ALL_SPECS)
    def test_kinds_are_distinct(self, spec_type):
        kinds = {s.kind for s in ALL_SPECS}
        assert len(kinds) == len(ALL_SPECS)
        assert spec_type.kind


class TestMethodMapping:
    def test_legacy_strings_covered(self):
        assert {"forward", "mcmc", "stratified"} <= set(METHOD_SPECS)

    def test_forward_mapping_preserves_budget(self):
        spec = spec_from_method("forward", p=1e-3, samples=120, chains=3)
        assert isinstance(spec, ForwardSpec)
        assert (spec.samples, spec.chains) == (120, 3)

    def test_mcmc_mapping_matches_legacy_steps(self):
        spec = spec_from_method("mcmc", p=1e-3, samples=100, chains=4)
        assert isinstance(spec, McmcSpec)
        assert spec.steps == max(4, 100 // 4)

    def test_stratified_mapping_matches_legacy_budget(self):
        spec = spec_from_method("stratified", p=1e-3, samples=100, chains=2)
        assert isinstance(spec, StratifiedSpec)
        assert spec.samples_per_stratum == max(4, 100 // 8)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep method"):
            spec_from_method("exact", p=1e-3, samples=10, chains=2)
