"""Shared fixtures: golden networks and evaluation batches.

Expensive artifacts (trained networks) are session-scoped; tests treat
them as read-only. Everything is seeded, so the whole suite is
deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, two_moons
from repro.nn import MLP, paper_mlp
from repro.nn.models import resnet18_cifar_small
from repro.train import Adam, Trainer


@pytest.fixture(scope="session")
def moons_data():
    """(train_x, train_y, eval_x, eval_y) for the two-moons problem."""
    train_x, train_y = two_moons(500, noise=0.12, rng=0)
    eval_x, eval_y = two_moons(250, noise=0.12, rng=1)
    return train_x, train_y, eval_x, eval_y


@pytest.fixture(scope="session")
def trained_mlp(moons_data):
    """The paper's Fig. 1 MLP trained to high accuracy on two-moons."""
    train_x, train_y, _, _ = moons_data
    model = paper_mlp(rng=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
    loader = DataLoader(ArrayDataset(train_x, train_y), batch_size=32, shuffle=True, rng=1)
    result = trainer.fit(loader, epochs=40)
    assert result.final_train_accuracy > 0.95, "fixture MLP failed to train"
    model.eval()
    return model


@pytest.fixture(scope="session")
def moons_eval(moons_data):
    """Evaluation batch for campaign statistics."""
    _, _, eval_x, eval_y = moons_data
    return eval_x, eval_y


@pytest.fixture(scope="session")
def tiny_resnet():
    """Untrained small ResNet-18 (structure tests and layerwise plumbing).

    Untrained weights are fine for structural/injection tests; training a
    ResNet is reserved for the benchmark harnesses.
    """
    return resnet18_cifar_small(num_classes=10, rng=0).eval()


@pytest.fixture(scope="session")
def tiny_images():
    """A small batch of CIFAR-shaped images and labels."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=(8, 3, 16, 16)).astype(np.float32)
    y = rng.integers(0, 10, size=8).astype(np.int64)
    return x, y


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(1234)
