"""Bit-level float32 machinery."""

import numpy as np
import pytest

from repro.bits import (
    apply_bit_mask,
    bits_to_float,
    count_set_bits,
    flip_bit,
    float_to_bits,
    mask_to_positions,
    positions_to_mask,
    sample_bernoulli_mask,
    sample_flip_positions,
)


class TestReinterpretation:
    def test_roundtrip(self):
        x = np.array([0.0, 1.0, -1.5, 3.14e-30, 1e30], dtype=np.float32)
        assert np.array_equal(bits_to_float(float_to_bits(x)), x)

    def test_known_patterns(self):
        assert float_to_bits(np.array([1.0], dtype=np.float32))[0] == 0x3F800000
        assert float_to_bits(np.array([-2.0], dtype=np.float32))[0] == 0xC0000000
        assert float_to_bits(np.array([0.0], dtype=np.float32))[0] == 0

    def test_dtype_enforcement(self):
        with pytest.raises(TypeError):
            float_to_bits(np.zeros(2, dtype=np.float64))
        with pytest.raises(TypeError):
            bits_to_float(np.zeros(2, dtype=np.int32))


class TestApplyMask:
    def test_zero_mask_is_identity(self):
        x = np.array([1.0, 2.0], dtype=np.float32)
        assert np.array_equal(apply_bit_mask(x, np.zeros(2, dtype=np.uint32)), x)

    def test_does_not_modify_input(self):
        x = np.array([1.0], dtype=np.float32)
        apply_bit_mask(x, np.array([0xFFFFFFFF], dtype=np.uint32))
        assert x[0] == 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            apply_bit_mask(np.zeros(3, dtype=np.float32), np.zeros(2, dtype=np.uint32))

    def test_known_flips(self):
        assert flip_bit(1.0, 31) == -1.0          # sign
        assert flip_bit(1.0, 22) == 1.5           # top mantissa bit
        assert flip_bit(1.0, 23) == 0.5           # exponent LSB: 1 -> 0.5
        assert np.isinf(flip_bit(1.0, 30))        # exponent MSB: catastrophic

    def test_flip_bit_validation(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 32)


class TestSampling:
    def test_flip_count_matches_binomial_mean(self):
        rng = np.random.default_rng(0)
        n, p, trials = 500, 0.01, 30
        counts = [
            count_set_bits(sample_bernoulli_mask((n,), p, rng)) for _ in range(trials)
        ]
        expected = n * 32 * p  # 160
        assert abs(np.mean(counts) - expected) < 4 * np.sqrt(expected / trials)

    def test_p_zero_and_one(self):
        rng = np.random.default_rng(1)
        assert count_set_bits(sample_bernoulli_mask((10,), 0.0, rng)) == 0
        assert count_set_bits(sample_bernoulli_mask((10,), 1.0, rng)) == 320

    def test_restricted_bit_lanes(self):
        rng = np.random.default_rng(2)
        mask = sample_bernoulli_mask((100,), 0.5, rng, bits=np.array([31]))
        # Only the sign bit may be set.
        assert not np.any(mask & np.uint32(0x7FFFFFFF))
        assert np.any(mask >> np.uint32(31))

    def test_positions_unique(self):
        rng = np.random.default_rng(3)
        positions = sample_flip_positions(100, 0.05, rng)
        assert len(positions) == len(set(positions.tolist()))

    def test_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            sample_flip_positions(-1, 0.1, rng)
        with pytest.raises(ValueError):
            sample_flip_positions(10, 1.5, rng)
        with pytest.raises(ValueError):
            sample_flip_positions(10, 0.1, rng, bits=np.array([40]))


class TestPositionsMask:
    def test_roundtrip(self):
        positions = np.array([0, 31, 32, 95])
        mask = positions_to_mask(positions, (3,))
        assert sorted(mask_to_positions(mask).tolist()) == sorted(positions.tolist())

    def test_multiple_bits_same_element(self):
        mask = positions_to_mask(np.array([0, 1, 2]), (1,))
        assert mask[0] == 0b111

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            positions_to_mask(np.array([32]), (1,))

    def test_nd_shapes(self):
        mask = positions_to_mask(np.array([33]), (2, 2))
        assert mask.shape == (2, 2)
        assert mask[0, 1] == 2  # element 1, bit 1


class TestPopcount:
    def test_known_values(self):
        assert count_set_bits(np.array([0], dtype=np.uint32)) == 0
        assert count_set_bits(np.array([0xFFFFFFFF], dtype=np.uint32)) == 32
        assert count_set_bits(np.array([0b1011, 0b1], dtype=np.uint32)) == 4

    def test_matches_python_popcount(self):
        rng = np.random.default_rng(5)
        values = rng.integers(0, 2**32, size=200, dtype=np.uint32)
        expected = sum(int(v).bit_count() for v in values)
        assert count_set_bits(values) == expected
