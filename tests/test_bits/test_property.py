"""Property-based tests for the bit machinery (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.bits import (
    apply_bit_mask,
    count_set_bits,
    mask_to_positions,
    positions_to_mask,
    sample_bernoulli_mask,
)

_float32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=8),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32),
)

_uint32 = st.integers(min_value=0, max_value=2**32 - 1)


class TestXorProperties:
    @given(_float32_arrays, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_involution(self, values, seed):
        """Applying the same mask twice restores the original bits."""
        rng = np.random.default_rng(seed)
        mask = sample_bernoulli_mask(values.shape, 0.2, rng)
        roundtrip = apply_bit_mask(apply_bit_mask(values, mask), mask)
        assert np.array_equal(float_bits(roundtrip), float_bits(values))

    @given(_float32_arrays)
    @settings(max_examples=40, deadline=None)
    def test_zero_mask_identity(self, values):
        out = apply_bit_mask(values, np.zeros(values.shape, dtype=np.uint32))
        assert np.array_equal(float_bits(out), float_bits(values))

    @given(_float32_arrays, st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_mask_composition_is_xor(self, values, seed):
        rng = np.random.default_rng(seed)
        m1 = sample_bernoulli_mask(values.shape, 0.1, rng)
        m2 = sample_bernoulli_mask(values.shape, 0.1, rng)
        sequential = apply_bit_mask(apply_bit_mask(values, m1), m2)
        combined = apply_bit_mask(values, m1 ^ m2)
        assert np.array_equal(float_bits(sequential), float_bits(combined))


def float_bits(x: np.ndarray) -> np.ndarray:
    """Compare via bit patterns (NaN-safe equality)."""
    return x.view(np.uint32)


class TestPopcountProperties:
    @given(st.lists(_uint32, min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_matches_int_bit_count(self, words):
        arr = np.asarray(words, dtype=np.uint32)
        assert count_set_bits(arr) == sum(w.bit_count() for w in words)

    @given(st.lists(_uint32, min_size=1, max_size=20), st.lists(_uint32, min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_additive_over_concatenation(self, a, b):
        arr_a = np.asarray(a, dtype=np.uint32)
        arr_b = np.asarray(b, dtype=np.uint32)
        both = np.concatenate([arr_a, arr_b])
        assert count_set_bits(both) == count_set_bits(arr_a) + count_set_bits(arr_b)


class TestPositionRoundtrip:
    @given(
        st.integers(min_value=1, max_value=20),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_positions_to_mask_roundtrip(self, n_elements, data):
        total = n_elements * 32
        k = data.draw(st.integers(min_value=0, max_value=min(total, 30)))
        positions = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=total - 1),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        mask = positions_to_mask(np.asarray(positions, dtype=np.int64), (n_elements,))
        recovered = sorted(mask_to_positions(mask).tolist())
        assert recovered == sorted(positions)
        assert count_set_bits(mask) == len(positions)
