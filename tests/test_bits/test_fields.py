"""IEEE-754 field classification."""

import numpy as np
import pytest

from repro.bits import EXPONENT_BITS, MANTISSA_BITS, SIGN_BIT, bit_field, describe_flip, field_mask


class TestClassification:
    def test_partition_is_complete(self):
        lanes = {SIGN_BIT} | set(EXPONENT_BITS) | set(MANTISSA_BITS)
        assert lanes == set(range(32))

    def test_field_names(self):
        assert bit_field(31) == "sign"
        assert bit_field(30) == "exponent"
        assert bit_field(23) == "exponent"
        assert bit_field(22) == "mantissa"
        assert bit_field(0) == "mantissa"

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            bit_field(32)

    def test_field_masks_partition_word(self):
        total = int(field_mask("sign")) | int(field_mask("exponent")) | int(field_mask("mantissa"))
        assert total == 0xFFFFFFFF
        assert int(field_mask("sign")) & int(field_mask("exponent")) == 0

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            field_mask("parity")


class TestDescribeFlip:
    def test_sign_flip(self):
        info = describe_flip(2.5, 31)
        assert info["flipped"] == -2.5
        assert info["field"] == "sign"
        assert info["rel_change"] == pytest.approx(2.0)
        assert not info["non_finite"]

    def test_catastrophic_exponent_flip(self):
        info = describe_flip(1.0, 30)
        assert info["non_finite"]
        assert info["field"] == "exponent"

    def test_low_mantissa_flip_is_tiny(self):
        info = describe_flip(1.0, 0)
        assert info["rel_change"] < 1e-6

    def test_mantissa_effect_grows_with_bit_index(self):
        changes = [describe_flip(1.0, b)["rel_change"] for b in range(0, 23)]
        assert all(a < b for a, b in zip(changes, changes[1:]))
