"""Multi-series ASCII plotting."""

import numpy as np
import pytest

from repro.analysis import multi_line_plot


class TestMultiLinePlot:
    def test_markers_and_legend(self):
        x = np.linspace(1, 10, 5)
        text = multi_line_plot(x, {"alpha": x, "beta": x**2}, title="T")
        assert "o" in text and "*" in text
        assert "'o' = alpha" in text and "'*' = beta" in text
        assert "T" in text

    def test_log_axis_labels(self):
        x = np.logspace(-4, -1, 4)
        text = multi_line_plot(x, {"s": np.arange(4.0)}, log_x=True)
        assert "1.0e-04" in text

    def test_series_validation(self):
        x = np.arange(4.0)
        with pytest.raises(ValueError):
            multi_line_plot(x, {})
        with pytest.raises(ValueError):
            multi_line_plot(x, {"bad": np.arange(3.0)})
        too_many = {f"s{i}": x for i in range(7)}
        with pytest.raises(ValueError):
            multi_line_plot(x, too_many)

    def test_constant_series(self):
        x = np.arange(5.0) + 1
        text = multi_line_plot(x, {"flat": np.full(5, 2.0), "rise": x})
        assert "flat" in text


class TestCampaignPersistence:
    def test_campaign_save_roundtrip(self, trained_mlp, moons_eval, tmp_path):
        import json

        from repro.core import BayesianFaultInjector
        from repro.faults import TargetSpec

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        campaign = injector.mcmc_campaign(1e-3, chains=2, steps=20)
        path = str(tmp_path / "campaign.json")
        campaign.save(path)
        with open(path) as handle:
            record = json.load(handle)
        assert record["summary"]["p"] == 1e-3
        assert len(record["chains"]) == 2
        assert len(record["chains"][0]) == 20
        assert "completeness" in record
        assert record["summary"]["mean_error_pct"] == pytest.approx(100 * campaign.mean_error)
