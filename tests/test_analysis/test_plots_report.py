"""ASCII plotting and table/report output."""

import json

import numpy as np
import pytest

from repro.analysis import (
    ResultWriter,
    format_series,
    format_table,
    heatmap,
    histogram_plot,
    line_plot,
    scatter_plot,
)


class TestLinePlot:
    def test_contains_markers_and_axis(self):
        text = line_plot(np.array([1, 2, 3.0]), np.array([1, 4, 9.0]), title="T")
        assert "o" in text and "T" in text and "+" in text

    def test_log_x_labels(self):
        text = line_plot(np.logspace(-5, -1, 5), np.arange(5.0), log_x=True)
        assert "1.0e-05" in text

    def test_reference_line_drawn(self):
        text = line_plot(np.arange(5.0) + 1, np.arange(5.0), reference=2.0)
        assert "reference: 2.000" in text
        assert "-" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            line_plot(np.array([]), np.array([]))

    def test_constant_series_does_not_crash(self):
        text = line_plot(np.arange(4.0) + 1, np.full(4, 5.0))
        assert "o" in text


class TestOtherPlots:
    def test_scatter(self):
        text = scatter_plot(np.arange(10.0), np.arange(10.0) ** 2, marker="*")
        assert "*" in text

    def test_histogram(self):
        counts, edges = np.histogram(np.random.default_rng(0).random(100), bins=5)
        text = histogram_plot(counts, edges)
        assert "#" in text
        with pytest.raises(ValueError):
            histogram_plot(counts, edges[:-1])

    def test_heatmap_ramp(self):
        grid = np.linspace(0, 1, 16).reshape(4, 4)
        text = heatmap(grid, title="H", legend="prob")
        assert "@" in text  # maximum ramp char
        assert "scale:" in text and "prob" in text

    def test_heatmap_handles_nonfinite(self):
        grid = np.array([[0.0, np.inf], [1.0, np.nan]])
        # inf is non-finite -> '?'; must not crash
        text = heatmap(grid)
        assert "?" in text

    def test_heatmap_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))


class TestTables:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, two rows

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_empty_table(self):
        assert format_table([]) == "(empty table)"

    def test_float_formatting(self):
        text = format_table([{"v": 0.000012345}])
        assert "e-05" in text

    def test_format_series(self):
        text = format_series("fig2", np.array([1e-5, 1e-4]), np.array([0.1, 0.2]), "p", "err")
        assert "fig2" in text and "p" in text


class TestResultWriter:
    def test_roundtrip(self, tmp_path):
        writer = ResultWriter(str(tmp_path / "results"))
        path = writer.write("E1", {"series": np.array([1.0, 2.0]), "n": np.int64(5), "flag": np.bool_(True)})
        data = writer.read("E1")
        assert data["experiment"] == "E1"
        assert data["series"] == [1.0, 2.0]
        assert data["n"] == 5
        assert data["flag"] is True
        with open(path) as handle:
            assert json.load(handle)["experiment"] == "E1"

    def test_unserialisable_rejected(self, tmp_path):
        writer = ResultWriter(str(tmp_path))
        with pytest.raises(TypeError):
            writer.write("bad", {"obj": object()})
