"""Resampling statistics."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci, bootstrap_mean_difference, permutation_test, rank_correlation


class TestBootstrap:
    def test_ci_brackets_mean(self):
        samples = np.random.default_rng(0).normal(5.0, 1.0, size=200)
        lo, hi = bootstrap_ci(samples, rng=1)
        assert lo < samples.mean() < hi

    def test_ci_narrows_with_n(self):
        rng = np.random.default_rng(2)
        wide = bootstrap_ci(rng.normal(size=20), rng=3)
        narrow = bootstrap_ci(rng.normal(size=2000), rng=3)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_custom_statistic(self):
        samples = np.concatenate([np.zeros(50), np.ones(50)])
        lo, hi = bootstrap_ci(samples, statistic=np.median, rng=4)
        assert 0.0 <= lo <= hi <= 1.0

    def test_reproducible(self):
        samples = np.random.default_rng(5).normal(size=100)
        assert bootstrap_ci(samples, rng=7) == bootstrap_ci(samples, rng=7)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_ci(np.array([1.0]))
        with pytest.raises(ValueError):
            bootstrap_ci(np.ones(10), confidence=1.5)


class TestMeanDifference:
    def test_detects_shift(self):
        rng = np.random.default_rng(6)
        a = rng.normal(1.0, 0.1, 100)
        b = rng.normal(0.0, 0.1, 100)
        diff, lo, hi = bootstrap_mean_difference(a, b, rng=7)
        assert diff == pytest.approx(1.0, abs=0.1)
        assert lo > 0.5  # CI excludes zero

    def test_no_shift_ci_contains_zero(self):
        rng = np.random.default_rng(8)
        a = rng.normal(size=200)
        b = rng.normal(size=200)
        _, lo, hi = bootstrap_mean_difference(a, b, rng=9)
        assert lo < 0 < hi


class TestPermutation:
    def test_same_distribution_large_p(self):
        rng = np.random.default_rng(10)
        p = permutation_test(rng.normal(size=80), rng.normal(size=80), rng=11)
        assert p > 0.05

    def test_shifted_distribution_small_p(self):
        rng = np.random.default_rng(12)
        p = permutation_test(rng.normal(2, 1, 80), rng.normal(0, 1, 80), rng=13)
        assert p < 0.01

    def test_p_never_exactly_zero(self):
        p = permutation_test(np.full(20, 10.0), np.zeros(20), n_perm=100, rng=14)
        assert 0 < p <= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            permutation_test(np.array([]), np.ones(3))


class TestRankCorrelation:
    def test_perfect_monotone(self):
        x = np.arange(10, dtype=float)
        stats = rank_correlation(x, x**3)
        assert stats["spearman_rho"] == pytest.approx(1.0)
        assert stats["kendall_tau"] == pytest.approx(1.0)

    def test_anticorrelated(self):
        x = np.arange(10, dtype=float)
        stats = rank_correlation(x, -x)
        assert stats["spearman_rho"] == pytest.approx(-1.0)

    def test_independent_not_significant(self):
        rng = np.random.default_rng(15)
        stats = rank_correlation(rng.normal(size=60), rng.normal(size=60))
        assert abs(stats["spearman_rho"]) < 0.35
        assert stats["spearman_p"] > 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            rank_correlation(np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            rank_correlation(np.ones(5), np.ones(4))
