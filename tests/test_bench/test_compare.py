"""The regression gate: tolerance ratios, missing cases, noise floor."""

import pytest

from repro.bench import CaseStats, compare_records, make_record


def _record(medians: dict[str, float], group: str = "bench_micro") -> dict:
    cases = {
        name: CaseStats(
            median_s=median, iqr_s=0.0, mean_s=median, min_s=median, max_s=median,
            repeats=3, warmup=1,
        )
        for name, median in medians.items()
    }
    return make_record(group, cases, quick=True, seed=2019)


class TestGate:
    def test_identical_records_pass(self):
        baseline = _record({"fast": 0.01, "slow": 1.0})
        report = compare_records(_record({"fast": 0.01, "slow": 1.0}), baseline)
        assert report.passed and not report.regressions

    def test_gate_fails_on_injected_slowdown(self):
        baseline = _record({"fast": 0.01, "slow": 1.0})
        current = _record({"fast": 0.01, "slow": 2.5})  # 2.5x > 2.0 tolerance
        report = compare_records(current, baseline, tolerance=2.0)
        assert not report.passed
        (regression,) = report.regressions
        assert regression.name == "slow" and regression.status == "regressed"
        assert regression.ratio == pytest.approx(2.5)
        assert "FAIL" in report.summary()

    def test_slowdown_within_tolerance_passes(self):
        baseline = _record({"case": 1.0})
        report = compare_records(_record({"case": 1.8}), baseline, tolerance=2.0)
        assert report.passed

    def test_missing_case_fails(self):
        baseline = _record({"kept": 0.5, "dropped": 0.5})
        report = compare_records(_record({"kept": 0.5}), baseline)
        assert not report.passed
        assert [r.status for r in report.regressions] == ["missing"]

    def test_new_case_is_reported_but_passes(self):
        baseline = _record({"old": 0.5})
        report = compare_records(_record({"old": 0.5, "fresh": 0.1}), baseline)
        assert report.passed
        assert any(c.status == "new" and c.name == "fresh" for c in report.comparisons)

    def test_improvement_is_flagged_not_failed(self):
        baseline = _record({"case": 1.0})
        report = compare_records(_record({"case": 0.2}), baseline)
        assert report.passed
        assert report.comparisons[0].status == "improved"

    def test_noise_floor_skips_micro_timings(self):
        baseline = _record({"tiny": 2e-6})
        current = _record({"tiny": 9e-5})  # 45x — but both under the floor
        report = compare_records(current, baseline, noise_floor_s=1e-4)
        assert report.passed
        assert report.comparisons[0].status == "noise"

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError, match="group mismatch"):
            compare_records(_record({"c": 1.0}, group="a"), _record({"c": 1.0}, group="b"))

    def test_bad_tolerance_rejected(self):
        baseline = _record({"c": 1.0})
        with pytest.raises(ValueError, match="tolerance"):
            compare_records(baseline, baseline, tolerance=0.0)

    def test_records_validated_before_compare(self):
        baseline = _record({"c": 1.0})
        with pytest.raises(ValueError):
            compare_records({"schema": "nope"}, baseline)
