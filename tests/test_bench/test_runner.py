"""The bench runner and CLI: record emission, gating, committed baselines."""

import json
import os
import time

import pytest

import repro.bench.suites as suites
from repro.bench import load_record, run_groups, suite_names, validate_bench_record
from repro.bench.runner import bench_path, write_record
from repro.bench.suites import CaseSpec
from repro.cli import main

#: the groups the repository commits seed baselines for
REQUIRED_GROUPS = (
    "bench_micro",
    "bench_parallel_sweep",
    "bench_fig2_mlp_sweep",
    "bench_completeness",
    "bench_mcmc",
    "bench_estimator",
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")


@pytest.fixture()
def tiny_suites(monkeypatch):
    """Replace the real suites (which train golden networks) with instant ones."""

    def build(quick, seed, cache_dir):
        # fast_case must clear the gate's 1e-4s noise floor so doctored
        # baselines register as regressions rather than noise.
        return {
            "fast_case": CaseSpec(lambda: time.sleep(5e-4), warmup=1, repeats=3),
            "other_case": CaseSpec(lambda: sum(range(100)), warmup=0, repeats=2),
        }

    monkeypatch.setattr(suites, "SUITES", {"bench_micro": build})
    return build


class TestRunner:
    def test_run_groups_writes_valid_records(self, tiny_suites, tmp_path):
        records, reports = run_groups(out_dir=str(tmp_path), quick=True, progress=lambda _: None)
        assert set(records) == {"bench_micro"}
        assert reports == []
        path = bench_path("bench_micro", str(tmp_path))
        record = load_record(path)
        assert set(record["cases"]) == {"fast_case", "other_case"}
        assert record["quick"] is True
        assert record["cases"]["other_case"]["repeats"] == 2

    def test_check_passes_against_own_baseline(self, tiny_suites, tmp_path):
        run_groups(out_dir=str(tmp_path), quick=True, progress=lambda _: None)
        _, reports = run_groups(
            out_dir=str(tmp_path / "fresh"), baseline_dir=str(tmp_path),
            quick=True, check=True, tolerance=100.0, progress=lambda _: None,
        )
        assert len(reports) == 1 and reports[0].passed

    def test_check_fails_on_doctored_baseline(self, tiny_suites, tmp_path):
        """The gate demonstrably fires: shrink the baseline medians so the
        real timings look like a massive regression."""
        records, _ = run_groups(out_dir=str(tmp_path), quick=True, progress=lambda _: None)
        doctored = json.loads(json.dumps(records["bench_micro"]))
        for case in doctored["cases"].values():
            case["median_s"] = case["median_s"] / 1e6  # pretend it used to be 1e6x faster
        write_record(doctored, str(tmp_path))
        _, reports = run_groups(
            out_dir=str(tmp_path / "fresh"), baseline_dir=str(tmp_path),
            quick=True, check=True, tolerance=2.0, progress=lambda _: None,
        )
        assert not reports[0].passed
        assert all(c.status == "regressed" for c in reports[0].regressions)

    def test_check_missing_baseline_raises(self, tiny_suites, tmp_path):
        with pytest.raises(FileNotFoundError, match="no committed baseline"):
            run_groups(
                out_dir=str(tmp_path), baseline_dir=str(tmp_path / "nowhere"),
                quick=True, check=True, progress=lambda _: None,
            )

    def test_filtered_run_never_writes_records(self, tiny_suites, tmp_path):
        records, _ = run_groups(
            out_dir=str(tmp_path), quick=True, case_filter="fast_*", progress=lambda _: None,
        )
        assert set(records["bench_micro"]["cases"]) == {"fast_case"}
        assert not os.path.exists(bench_path("bench_micro", str(tmp_path)))

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError, match="unknown bench suite"):
            run_groups(["not_a_suite"], progress=lambda _: None)


class TestCli:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(REQUIRED_GROUPS) <= set(out)

    def test_bench_unknown_group_exits(self):
        with pytest.raises(SystemExit, match="unknown bench group"):
            main(["bench", "--group", "nope"])

    def test_bench_check_filter_conflict(self):
        with pytest.raises(SystemExit, match="mutually exclusive"):
            main(["bench", "--check", "--filter", "x*"])

    def test_bench_end_to_end_with_gate(self, tiny_suites, tmp_path, capsys):
        out_dir = str(tmp_path)
        assert main(["bench", "--quick", "--out-dir", out_dir]) == 0
        assert "BENCH_bench_micro.json" in os.listdir(out_dir)
        # gate against own baseline: passes
        assert main([
            "bench", "--quick", "--out-dir", str(tmp_path / "fresh"),
            "--baseline-dir", out_dir, "--check", "--tolerance", "100.0",
        ]) == 0
        assert "bench gate passed" in capsys.readouterr().out
        # doctor the baseline: fails with exit code 1
        record = load_record(bench_path("bench_micro", out_dir))
        for case in record["cases"].values():
            case["median_s"] /= 1e6
        write_record(record, out_dir)
        assert main([
            "bench", "--quick", "--out-dir", str(tmp_path / "fresh2"),
            "--baseline-dir", out_dir, "--check", "--tolerance", "2.0",
        ]) == 1

    def test_bench_check_without_baseline_exits(self, tiny_suites, tmp_path):
        with pytest.raises(SystemExit, match="no committed baseline"):
            main(["bench", "--quick", "--out-dir", str(tmp_path),
                  "--baseline-dir", str(tmp_path / "missing"), "--check"])


class TestCommittedBaselines:
    def test_required_seed_baselines_are_committed_and_valid(self):
        for group in REQUIRED_GROUPS:
            path = os.path.join(REPO_ROOT, f"BENCH_{group}.json")
            assert os.path.exists(path), f"missing committed baseline {path}"
            record = load_record(path)
            assert record["group"] == group
            assert record["quick"] is True  # CI gates on the quick tier

    def test_suite_registry_covers_required_groups(self):
        assert set(REQUIRED_GROUPS) <= set(suite_names())

    def test_committed_baselines_checksum_intact(self):
        from repro.utils.persist import read_checked_json

        for group in REQUIRED_GROUPS:
            payload = read_checked_json(os.path.join(REPO_ROOT, f"BENCH_{group}.json"))
            validate_bench_record(payload)
