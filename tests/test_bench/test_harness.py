"""Measurement protocol, record schema, and schema validation."""

import pytest

from repro.bench import BENCH_SCHEMA, CaseStats, make_record, measure, validate_bench_record


class TestMeasure:
    def test_warmup_and_repeat_counts(self):
        calls = []
        stats = measure(lambda: calls.append(1), warmup=2, repeats=4)
        assert len(calls) == 6  # 2 warmup + 4 timed
        assert stats.repeats == 4 and stats.warmup == 2

    def test_statistics_are_consistent(self):
        stats = measure(lambda: sum(range(500)), warmup=1, repeats=5)
        assert stats.min_s <= stats.median_s <= stats.max_s
        assert stats.min_s <= stats.mean_s <= stats.max_s
        assert stats.iqr_s >= 0.0

    def test_invalid_protocol_rejected(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ValueError):
            measure(lambda: None, warmup=-1)

    def test_from_samples_median_and_iqr(self):
        stats = CaseStats.from_samples([1.0, 2.0, 3.0, 4.0, 5.0], warmup=0)
        assert stats.median_s == 3.0
        assert stats.iqr_s == pytest.approx(2.0)  # inclusive quartiles: 4 - 2

    def test_single_sample_has_zero_iqr(self):
        stats = CaseStats.from_samples([0.5], warmup=1)
        assert stats.median_s == 0.5 and stats.iqr_s == 0.0


class TestRecordSchema:
    def _stats(self) -> CaseStats:
        return CaseStats.from_samples([0.01, 0.011, 0.012], warmup=1)

    def test_make_record_validates(self):
        record = make_record("bench_micro", {"case_a": self._stats()}, quick=True, seed=2019)
        assert validate_bench_record(record) is record
        assert record["schema"] == BENCH_SCHEMA
        assert record["cases"]["case_a"]["repeats"] == 3
        assert "python" in record["environment"]

    def test_record_is_json_serialisable(self):
        import json

        record = make_record("g", {"c": self._stats()}, quick=False, seed=0)
        assert json.loads(json.dumps(record)) == record

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.pop("schema"),
            lambda r: r.update(schema="repro.bench/99"),
            lambda r: r.update(cases={}),
            lambda r: r.update(cases={"c": "not-a-dict"}),
            lambda r: r["cases"]["c"].pop("median_s"),
            lambda r: r["cases"]["c"].update(median_s=-1.0),
            lambda r: r["cases"]["c"].update(repeats=0),
            lambda r: r["cases"]["c"].update(repeats=1.5),
        ],
    )
    def test_malformed_records_rejected(self, mutate):
        record = make_record("g", {"c": self._stats()}, quick=True, seed=1)
        mutate(record)
        with pytest.raises(ValueError):
            validate_bench_record(record)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError):
            validate_bench_record([1, 2, 3])
