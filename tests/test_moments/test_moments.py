"""Analytic moment propagation: perturbation moments, ADF, validation vs MC."""

import numpy as np
import pytest

from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.moments import MomentPropagator, weight_perturbation_moments
from repro.moments.perturbation import default_severe_threshold
from repro.moments.propagation import _relu_moments

BENIGN_LANES = tuple(range(0, 23)) + (31,)


class TestPerturbationMoments:
    def test_moments_match_exhaustive_expectation(self, rng):
        """E[Δw] and E[Δw²] over benign lanes must match the brute-force
        single-flip enumeration to first order in p."""
        values = np.asarray([0.75, -1.5, 0.1], dtype=np.float32)
        p = 1e-4
        moments = weight_perturbation_moments(values, p, bits=BENIGN_LANES)
        from repro.bits import flip_bit

        for i, w in enumerate(values):
            deltas = [flip_bit(float(w), b) - float(w) for b in BENIGN_LANES]
            expected_mean = p * sum(deltas)
            expected_second = p * sum(d * d for d in deltas)
            assert moments.mean[i] == pytest.approx(expected_mean, rel=1e-6)
            assert moments.variance[i] == pytest.approx(expected_second - expected_mean**2, rel=1e-5)

    def test_severe_sites_counted_for_normal_weights(self):
        values = np.asarray([0.5, 1.0, -0.25], dtype=np.float32)
        moments = weight_perturbation_moments(values, 1e-3)
        # High exponent flips of O(1) weights exceed any sane threshold.
        assert moments.total_severe_sites >= 3  # at least bit 30 each

    def test_severe_probability_exact(self):
        values = np.asarray([1.0], dtype=np.float32)
        p = 0.01
        moments = weight_perturbation_moments(values, p)
        k = moments.total_severe_sites
        assert moments.severe_probability() == pytest.approx(1 - (1 - p) ** k)

    def test_lane_restriction_removes_severe_sites(self):
        values = np.asarray([0.5, -2.0], dtype=np.float32)
        moments = weight_perturbation_moments(values, 1e-3, bits=BENIGN_LANES)
        assert moments.total_severe_sites == 0

    def test_zero_p_zero_moments(self):
        values = np.asarray([1.0, 2.0], dtype=np.float32)
        moments = weight_perturbation_moments(values, 0.0)
        assert not moments.mean.any()
        assert not moments.variance.any()
        assert moments.severe_probability() == 0.0

    def test_default_threshold_scales_with_rms(self):
        small = default_severe_threshold(np.full(10, 0.01, dtype=np.float32))
        large = default_severe_threshold(np.full(10, 50.0, dtype=np.float32))
        assert large > small
        assert small == pytest.approx(100.0)  # floored at rms=1

    def test_validation(self):
        values = np.ones(3, dtype=np.float32)
        with pytest.raises(ValueError):
            weight_perturbation_moments(values, 1.5)
        with pytest.raises(ValueError):
            weight_perturbation_moments(values, 0.1, bits=())
        with pytest.raises(ValueError):
            weight_perturbation_moments(values, 0.1, severe_threshold=0.0)


class TestReluMoments:
    def test_zero_variance_is_plain_relu(self):
        mean = np.asarray([-1.0, 0.0, 2.0])
        out_mean, out_var = _relu_moments(mean, np.zeros(3))
        assert np.allclose(out_mean, [0.0, 0.0, 2.0])
        assert np.allclose(out_var, 0.0)

    def test_matches_monte_carlo(self, rng):
        mu, sigma = 0.3, 1.2
        out_mean, out_var = _relu_moments(np.asarray([mu]), np.asarray([sigma**2]))
        draws = np.maximum(rng.normal(mu, sigma, size=200_000), 0.0)
        assert out_mean[0] == pytest.approx(draws.mean(), rel=0.02)
        assert out_var[0] == pytest.approx(draws.var(), rel=0.02)

    def test_deep_negative_mean_vanishes(self):
        out_mean, out_var = _relu_moments(np.asarray([-50.0]), np.asarray([1.0]))
        assert out_mean[0] < 1e-6
        assert out_var[0] < 1e-4


class TestPropagator:
    def test_zero_p_reproduces_clean_predictions(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        propagator = MomentPropagator(trained_mlp, 0.0)
        prediction = propagator.predict_error(eval_x, eval_y)
        assert prediction.severe_probability == 0.0
        assert prediction.combined_error == pytest.approx(prediction.golden_error, abs=1e-9)

    def test_benign_lane_prediction_matches_monte_carlo(self, trained_mlp, moons_eval):
        """The headline A7 agreement: with severe lanes excluded, the
        analytic prediction tracks sampling campaigns closely."""
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        for p in (1e-3, 1e-2):
            propagator = MomentPropagator(trained_mlp, p, bits=BENIGN_LANES)
            prediction = propagator.predict_error(eval_x, eval_y)
            campaign = injector.forward_campaign(
                p, samples=300, fault_model=BernoulliBitFlipModel(p, bits=BENIGN_LANES),
                stream=f"benign:{p}",
            )
            assert prediction.combined_error == pytest.approx(campaign.mean_error, abs=0.02)

    def test_full_lane_bounds_bracket_monte_carlo(self, trained_mlp, moons_eval):
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        for p in (1e-4, 1e-3, 1e-2):
            propagator = MomentPropagator(trained_mlp, p)
            prediction = propagator.predict_error(eval_x, eval_y)
            campaign = injector.forward_campaign(p, samples=300)
            assert prediction.brackets(campaign.mean_error), (p, prediction, campaign.mean_error)

    def test_error_monotone_in_p(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        errors = [
            MomentPropagator(trained_mlp, p, bits=BENIGN_LANES).predict_error(eval_x, eval_y).combined_error
            for p in (1e-5, 1e-3, 1e-1)
        ]
        assert errors[0] <= errors[1] <= errors[2] + 1e-9

    def test_bounds_ordering(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        prediction = MomentPropagator(trained_mlp, 1e-3).predict_error(eval_x, eval_y)
        assert prediction.error_lower <= prediction.combined_error <= prediction.error_upper

    def test_unsupported_models_rejected(self, tiny_resnet):
        with pytest.raises(TypeError):
            MomentPropagator(tiny_resnet, 1e-3)

    def test_model_without_dense_rejected(self):
        from repro.nn import ReLU, Sequential

        with pytest.raises(ValueError):
            MomentPropagator(Sequential(ReLU()), 1e-3)

    def test_misclassification_probability_validation(self):
        with pytest.raises(ValueError):
            MomentPropagator.misclassification_probability(
                np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(4, dtype=np.int64)
            )
