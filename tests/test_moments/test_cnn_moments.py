"""Analytic propagation through convolutional architectures."""

import numpy as np
import pytest

from repro.data import DataLoader, make_digit_dataset
from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.moments import MomentPropagator
from repro.nn import BatchNorm2d, Conv2d, Dense, Flatten, LeNet, ReLU, Sequential
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d
from repro.train import Adam, Trainer

BENIGN_LANES = tuple(range(0, 23)) + (31,)


@pytest.fixture(scope="module")
def digit_lenet():
    """Avg-pool LeNet trained on seven-segment digits."""
    train = make_digit_dataset(1000, size=16, noise=0.3, rng=0)
    test = make_digit_dataset(250, size=16, noise=0.3, rng=1)
    model = LeNet(in_channels=1, num_classes=10, image_size=16, pool="avg", rng=0)
    Trainer(model, Adam(model.parameters(), lr=1e-3)).fit(
        DataLoader(train, batch_size=64, shuffle=True, rng=2), epochs=6
    )
    model.eval()
    return model, test.features[:120], test.labels[:120]


class TestFlattening:
    def test_lenet_avg_flattens(self, digit_lenet):
        model, _, _ = digit_lenet
        propagator = MomentPropagator(model, 1e-4)
        kinds = [type(layer).__name__ for layer in propagator.sequence]
        assert "Conv2d" in kinds and "AvgPool2d" in kinds and "Dense" in kinds

    def test_max_pool_lenet_rejected(self):
        model = LeNet(in_channels=1, num_classes=10, image_size=16, pool="max", rng=0)
        with pytest.raises(TypeError, match="unsupported layer"):
            MomentPropagator(model, 1e-4)

    def test_nested_sequential_supported(self):
        model = Sequential(
            Sequential(Conv2d(1, 2, 3, padding=1, rng=0), ReLU()),
            Flatten(),
            Dense(2 * 8 * 8, 3, rng=1),
        )
        propagator = MomentPropagator(model, 1e-4)
        assert len(propagator.sequence) == 4


class TestCnnPropagation:
    def test_zero_p_matches_clean_network(self, digit_lenet):
        model, eval_x, eval_y = digit_lenet
        from repro.tensor import Tensor, no_grad

        propagator = MomentPropagator(model, 0.0)
        mean, variance = propagator.propagate(eval_x)
        with no_grad():
            logits = model(Tensor(eval_x)).data
        assert np.allclose(mean, logits, atol=1e-3)
        assert np.allclose(variance, 0.0, atol=1e-6)

    def test_benign_lane_prediction_matches_mc(self, digit_lenet):
        from repro.core import BayesianFaultInjector

        model, eval_x, eval_y = digit_lenet
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        p = 1e-3
        prediction = MomentPropagator(model, p, bits=BENIGN_LANES).predict_error(eval_x, eval_y)
        campaign = injector.forward_campaign(
            p, samples=120, fault_model=BernoulliBitFlipModel(p, bits=BENIGN_LANES)
        )
        assert prediction.combined_error == pytest.approx(campaign.mean_error, abs=0.04)

    def test_full_lane_bounds_bracket_mc(self, digit_lenet):
        from repro.core import BayesianFaultInjector

        model, eval_x, eval_y = digit_lenet
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        p = 1e-4
        prediction = MomentPropagator(model, p).predict_error(eval_x, eval_y)
        campaign = injector.forward_campaign(p, samples=120)
        assert prediction.brackets(campaign.mean_error)

    def test_variance_grows_with_p(self, digit_lenet):
        model, eval_x, _ = digit_lenet
        _, var_small = MomentPropagator(model, 1e-5, bits=BENIGN_LANES).propagate(eval_x[:8])
        _, var_large = MomentPropagator(model, 1e-3, bits=BENIGN_LANES).propagate(eval_x[:8])
        assert var_large.mean() > var_small.mean()


class TestBatchNormMoments:
    def test_batchnorm_affine_exact(self):
        """With zero fault variance, the BN moment step must equal the
        layer's own eval-mode forward."""
        from repro.tensor import Tensor, no_grad

        rng = np.random.default_rng(0)
        bn = BatchNorm2d(3)
        # Give the running stats non-trivial values.
        bn._set_buffer("running_mean", rng.normal(size=3).astype(np.float32))
        bn._set_buffer("running_var", rng.uniform(0.5, 2.0, size=3).astype(np.float32))
        bn.weight.data[...] = rng.normal(1.0, 0.2, size=3).astype(np.float32)
        bn.bias.data[...] = rng.normal(size=3).astype(np.float32)
        bn.eval()
        model = Sequential(bn, Flatten(), Dense(3 * 4 * 4, 2, rng=1))
        propagator = MomentPropagator(model, 0.0)
        x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
        mean, variance = propagator.propagate(x)
        with no_grad():
            expected = model(Tensor(x)).data
        assert np.allclose(mean, expected, atol=1e-4)
        assert np.allclose(variance, 0.0)


class TestPoolingMoments:
    def test_avgpool_variance_reduction(self):
        model = Sequential(AvgPool2d(2), Flatten(), Dense(4, 2, rng=0))
        propagator = MomentPropagator(model, 0.0)
        # Inject synthetic variance by hand through the internal machinery:
        mean = np.ones((1, 1, 4, 4))
        variance = np.full((1, 1, 4, 4), 4.0)
        pooled_mean, pooled_var = propagator._avgpool_moments(AvgPool2d(2), mean, variance)
        assert np.allclose(pooled_mean, 1.0)
        assert np.allclose(pooled_var, 1.0)  # var/k² = 4/4

    def test_global_avgpool_in_sequence(self):
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=0), ReLU(), GlobalAvgPool2d(), Dense(4, 2, rng=1)
        )
        propagator = MomentPropagator(model, 1e-4, bits=BENIGN_LANES)
        mean, variance = propagator.propagate(np.random.default_rng(0).normal(size=(2, 1, 6, 6)).astype(np.float32))
        assert mean.shape == (2, 2)
        assert (variance >= 0).all()
