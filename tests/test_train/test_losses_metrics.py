"""Losses and classification metrics."""

import math

import numpy as np
import pytest

from repro.tensor import Tensor
from repro.train import CrossEntropyLoss, MSELoss, accuracy, classification_error, confusion_matrix
from repro.train.metrics import top_k_accuracy


class TestCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        loss = CrossEntropyLoss()
        logits = Tensor(np.zeros((4, 10), dtype=np.float32))
        value = loss(logits, np.zeros(4, dtype=np.int64)).item()
        assert value == pytest.approx(math.log(10), rel=1e-5)

    def test_confident_correct_logits_near_zero(self):
        loss = CrossEntropyLoss()
        logits = np.full((2, 3), -50.0, dtype=np.float32)
        logits[:, 1] = 50.0
        value = loss(Tensor(logits), np.array([1, 1])).item()
        assert value < 1e-4

    def test_gradient_is_softmax_minus_onehot(self):
        loss = CrossEntropyLoss()
        logits = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32), requires_grad=True)
        loss(logits, np.array([0, 1, 2])).backward()
        soft = np.exp(logits.data - logits.data.max(1, keepdims=True))
        soft /= soft.sum(1, keepdims=True)
        onehot = np.zeros((3, 4))
        onehot[np.arange(3), [0, 1, 2]] = 1
        assert np.allclose(logits.grad, (soft - onehot) / 3, atol=1e-5)

    def test_label_validation(self):
        loss = CrossEntropyLoss()
        logits = Tensor(np.zeros((2, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="out of range"):
            loss(logits, np.array([0, 3]))
        with pytest.raises(ValueError, match="batch"):
            loss(logits, np.array([0]))
        with pytest.raises(ValueError, match="2-D"):
            loss(Tensor(np.zeros(3, dtype=np.float32)), np.array([0, 1, 2]))


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        pred = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss()(Tensor(np.zeros(2, dtype=np.float32)), np.zeros(3))


class TestMetrics:
    def test_accuracy_and_error_complement(self):
        logits = np.array([[2.0, 1.0], [0.0, 5.0], [3.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)
        assert classification_error(logits, labels) == pytest.approx(1 / 3)

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]], dtype=np.float32))
        assert accuracy(logits, np.array([0])) == 1.0

    def test_batch_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 3)), np.zeros(3, dtype=np.int64))

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.9, 0.06, 0.04]])
        labels = np.array([2, 2])
        assert top_k_accuracy(logits, labels, k=1) == 0.0
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=3) == 1.0
        with pytest.raises(ValueError):
            top_k_accuracy(logits, labels, k=4)

    def test_confusion_matrix(self):
        logits = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        labels = np.array([0, 1, 1])
        matrix = confusion_matrix(logits, labels, 2)
        assert np.array_equal(matrix, [[1, 0], [1, 1]])
        assert matrix.sum() == 3
