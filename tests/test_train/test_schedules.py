"""Learning-rate schedules."""

import math

import numpy as np
import pytest

from repro.nn import Parameter
from repro.train import SGD, ConstantLR, CosineAnnealingLR, StepLR


def _opt(lr=1.0):
    return SGD([Parameter(np.ones(1, dtype=np.float32))], lr=lr)


class TestConstant:
    def test_never_changes(self):
        opt = _opt(0.5)
        schedule = ConstantLR(opt)
        for epoch in (0, 10, 1000):
            assert schedule.step(epoch) == 0.5


class TestStep:
    def test_decays_every_step_size(self):
        schedule = StepLR(_opt(1.0), step_size=10, gamma=0.1)
        assert schedule.lr_at(0) == 1.0
        assert schedule.lr_at(9) == 1.0
        assert schedule.lr_at(10) == pytest.approx(0.1)
        assert schedule.lr_at(25) == pytest.approx(0.01)

    def test_step_mutates_optimizer(self):
        opt = _opt(1.0)
        StepLR(opt, step_size=1, gamma=0.5).step(epoch=2)
        assert opt.lr == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLR(_opt(), step_size=0)


class TestCosine:
    def test_endpoints(self):
        schedule = CosineAnnealingLR(_opt(1.0), t_max=100, eta_min=0.1)
        assert schedule.lr_at(0) == pytest.approx(1.0)
        assert schedule.lr_at(100) == pytest.approx(0.1)

    def test_midpoint(self):
        schedule = CosineAnnealingLR(_opt(1.0), t_max=100)
        assert schedule.lr_at(50) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        schedule = CosineAnnealingLR(_opt(1.0), t_max=50)
        values = [schedule.lr_at(e) for e in range(51)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_clamps_past_t_max(self):
        schedule = CosineAnnealingLR(_opt(1.0), t_max=10, eta_min=0.0)
        assert schedule.lr_at(99) == pytest.approx(0.0, abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(_opt(), t_max=0)
