"""Trainer loop and checkpointing."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, gaussian_blobs
from repro.nn import MLP
from repro.train import Adam, CosineAnnealingLR, Trainer, load_checkpoint, save_checkpoint


@pytest.fixture()
def blob_loader():
    x, y = gaussian_blobs(300, scale=0.3, rng=0)
    return DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=1)


class TestTrainer:
    def test_loss_decreases(self, blob_loader):
        model = MLP(2, (16,), 3, rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        result = trainer.fit(blob_loader, epochs=15)
        assert result.train_loss[-1] < result.train_loss[0]
        assert result.final_train_accuracy > 0.9

    def test_validation_tracked(self, blob_loader):
        x, y = gaussian_blobs(100, scale=0.3, rng=5)
        val = DataLoader(ArrayDataset(x, y), batch_size=64)
        model = MLP(2, (16,), 3, rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        result = trainer.fit(blob_loader, epochs=5, val_loader=val)
        assert len(result.val_accuracy) == 5
        assert result.final_val_accuracy > 0.8

    def test_schedule_applied(self, blob_loader):
        model = MLP(2, (8,), 3, rng=0)
        opt = Adam(model.parameters(), lr=0.05)
        schedule = CosineAnnealingLR(opt, t_max=10)
        Trainer(model, opt, schedule=schedule).fit(blob_loader, epochs=3)
        assert opt.lr < 0.05  # epoch 2 of cosine decay

    def test_invalid_epochs(self, blob_loader):
        model = MLP(2, (8,), 3, rng=0)
        with pytest.raises(ValueError):
            Trainer(model, Adam(model.parameters())).fit(blob_loader, epochs=0)

    def test_evaluate_runs_in_eval_mode(self, blob_loader):
        model = MLP(2, (8,), 3, rng=0)
        trainer = Trainer(model, Adam(model.parameters()))
        trainer.evaluate(blob_loader)
        assert model.training  # restored afterwards

    def test_empty_loader_raises(self):
        model = MLP(2, (8,), 3, rng=0)
        empty = DataLoader(ArrayDataset(np.zeros((0, 2)), np.zeros(0)), batch_size=4)
        with pytest.raises(ValueError):
            Trainer(model, Adam(model.parameters())).fit(empty, epochs=1)


class TestCheckpoint:
    def test_roundtrip_with_metadata(self, tmp_path):
        model = MLP(2, (8,), 3, rng=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, accuracy=0.97, epoch=12, note="golden")
        fresh = MLP(2, (8,), 3, rng=99)
        metadata = load_checkpoint(fresh, path)
        assert metadata == {"accuracy": 0.97, "epoch": 12, "note": "golden"}
        for (_, a), (_, b) in zip(model.named_parameters(), fresh.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_creates_directories(self, tmp_path):
        model = MLP(2, (4,), 2, rng=0)
        path = str(tmp_path / "deep" / "nest" / "ckpt.npz")
        save_checkpoint(model, path)
        load_checkpoint(MLP(2, (4,), 2, rng=1), path)

    def test_slash_in_metadata_key_rejected(self, tmp_path):
        model = MLP(2, (4,), 2, rng=0)
        with pytest.raises(ValueError):
            save_checkpoint(model, str(tmp_path / "x.npz"), **{"bad/key": 1})

    def test_wrong_architecture_rejected(self, tmp_path):
        model = MLP(2, (8,), 3, rng=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(MLP(2, (16,), 3, rng=0), path)


class TestCheckpointDurability:
    def test_no_tmp_debris_after_save(self, tmp_path):
        import os

        model = MLP(2, (4,), 2, rng=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        save_checkpoint(model, path)  # overwrite goes through tmp + replace
        assert sorted(os.listdir(tmp_path)) == ["ckpt.npz"]

    def test_corruption_detected_on_load(self, tmp_path):
        from repro.utils.persist import ChecksumError

        model = MLP(2, (8,), 3, rng=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, accuracy=0.5)
        # flip bits in the middle of the archive (a weight payload region)
        data = bytearray(open(path, "rb").read())
        # find a zlib-free region: npz stores raw when uncompressed; flip a
        # run of bytes well past the header
        offset = len(data) // 2
        for i in range(offset, offset + 8):
            data[i] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        with pytest.raises((ChecksumError, Exception)):
            load_checkpoint(MLP(2, (8,), 3, rng=1), path)

    def test_checksum_detects_swapped_weights(self, tmp_path):
        """Rewriting a weight array without refreshing the checksum fails."""
        import numpy as np

        from repro.utils.persist import ChecksumError

        model = MLP(2, (4,), 2, rng=0)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        weight_key = next(k for k in payload if not k.startswith("__meta__/"))
        payload[weight_key] = payload[weight_key] + 1.0
        np.savez(path, **payload)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            load_checkpoint(MLP(2, (4,), 2, rng=1), path)

    def test_legacy_checkpoint_without_checksum_loads(self, tmp_path):
        import numpy as np

        model = MLP(2, (4,), 2, rng=0)
        path = str(tmp_path / "legacy.npz")
        state = {name: array for name, array in model.state_dict().items()}
        state["__meta__/accuracy"] = np.asarray(0.9)
        np.savez(path, **state)
        metadata = load_checkpoint(MLP(2, (4,), 2, rng=1), path)
        assert metadata == {"accuracy": 0.9}
