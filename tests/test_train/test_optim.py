"""Optimizers: update rules and convergence on a quadratic."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.train import SGD, Adam


def _quadratic_step(optimizer, param):
    """One gradient step on f(w) = ||w||²/2 (gradient = w)."""
    param.grad = param.data.copy()
    optimizer.step()


class TestSGD:
    def test_vanilla_update(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        p.grad = np.array([2.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.8)

    def test_momentum_accelerates(self):
        p_plain = Parameter(np.array([1.0], dtype=np.float32))
        p_momentum = Parameter(np.array([1.0], dtype=np.float32))
        plain = SGD([p_plain], lr=0.01)
        momentum = SGD([p_momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            _quadratic_step(plain, p_plain)
            _quadratic_step(momentum, p_momentum)
        assert abs(p_momentum.data[0]) < abs(p_plain.data[0])

    def test_weight_decay_shrinks_faster(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        p.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(0.95)

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()  # no grad set: no-op, no crash
        assert p.data[0] == 1.0

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(100):
            _quadratic_step(opt, p)
        assert np.abs(p.data).max() < 1e-3

    def test_validation(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction, |Δw| of step 1 ≈ lr regardless of grad scale.
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        p.grad = np.array([1000.0], dtype=np.float32)
        opt.step()
        assert abs(1.0 - p.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            _quadratic_step(opt, p)
        assert np.abs(p.data).max() < 1e-2

    def test_zero_grad(self):
        p = Parameter(np.ones(2, dtype=np.float32))
        opt = Adam([p])
        p.grad = np.ones(2, dtype=np.float32)
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = Parameter(np.ones(1, dtype=np.float32))
        with pytest.raises(ValueError):
            Adam([p], betas=(1.0, 0.9))
