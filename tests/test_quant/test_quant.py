"""int8 quantisation and its fault model."""

import numpy as np
import pytest

from repro.bits import count_set_bits
from repro.quant import (
    QuantizedBitFlipModel,
    dequantize_tensor,
    quantize_model,
    quantize_tensor,
)


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_scale(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=1000).astype(np.float32)
        codes, scale = quantize_tensor(values)
        restored = dequantize_tensor(codes, scale)
        assert np.abs(values - restored).max() <= scale / 2 + 1e-7

    def test_peak_maps_to_127(self):
        values = np.asarray([0.0, -2.0, 1.0], dtype=np.float32)
        codes, scale = quantize_tensor(values)
        assert scale == pytest.approx(2.0 / 127)
        assert codes.min() == -127

    def test_zero_tensor(self):
        codes, scale = quantize_tensor(np.zeros(5, dtype=np.float32))
        assert scale == 1.0
        assert not codes.any()

    def test_dequantize_validation(self):
        with pytest.raises(TypeError):
            dequantize_tensor(np.zeros(3, dtype=np.int32), 1.0)
        with pytest.raises(ValueError):
            dequantize_tensor(np.zeros(3, dtype=np.int8), 0.0)


class TestQuantizeModel:
    def test_accuracy_mostly_preserved(self, trained_mlp, moons_eval):
        from repro.nn import paper_mlp
        from repro.tensor import Tensor, no_grad
        from repro.train.metrics import accuracy

        eval_x, eval_y = moons_eval
        model = paper_mlp(rng=0)
        model.load_state_dict(trained_mlp.state_dict())
        model.eval()
        with no_grad():
            before = accuracy(model(Tensor(eval_x)), eval_y)
        report = quantize_model(model)
        with no_grad():
            after = accuracy(model(Tensor(eval_x)), eval_y)
        assert after > before - 0.03  # int8 costs at most a few points
        assert set(report.scales) == {n for n, _ in model.named_parameters()}
        assert report.worst_roundtrip_error < max(report.scales.values())

    def test_parameters_become_scale_multiples(self, trained_mlp):
        from repro.nn import paper_mlp

        model = paper_mlp(rng=0)
        model.load_state_dict(trained_mlp.state_dict())
        report = quantize_model(model)
        for name, param in model.named_parameters():
            ratios = param.data / np.float32(report.scales[name])
            assert np.allclose(ratios, np.round(ratios), atol=1e-3)


class TestQuantizedBitFlipModel:
    @pytest.fixture()
    def quantized_setup(self, trained_mlp):
        from repro.nn import paper_mlp

        model = paper_mlp(rng=0)
        model.load_state_dict(trained_mlp.state_dict())
        report = quantize_model(model)
        return model.eval(), report

    def test_mask_has_expected_flip_scale(self, quantized_setup, rng):
        model, report = quantized_setup
        fault_model = QuantizedBitFlipModel(0.05, report.scales).for_target("layers.0.weight")
        param = model.get_parameter("layers.0.weight")
        mask = fault_model.sample_mask_for(param.data, rng)
        assert mask.shape == param.data.shape
        assert count_set_bits(mask) > 0

    def test_corruption_bounded_by_code_range(self, quantized_setup, rng):
        """int8 faults cannot explode a value past 127·scale — the key
        resilience difference from float32's exponent flips."""
        from repro.bits import apply_bit_mask

        model, report = quantized_setup
        name = "layers.0.weight"
        param = model.get_parameter(name)
        fault_model = QuantizedBitFlipModel(0.2, report.scales).for_target(name)
        # Two's-complement code range is [-128, 127]: a sign-bit flip of a
        # small code can reach -128, so the reachable bound is 128·scale.
        bound = 128 * report.scales[name] + 1e-6
        for _ in range(10):
            mask = fault_model.sample_mask_for(param.data, rng)
            corrupted = apply_bit_mask(param.data, mask)
            assert np.abs(corrupted).max() <= bound

    def test_zero_p_gives_empty_mask(self, quantized_setup, rng):
        model, report = quantized_setup
        fault_model = QuantizedBitFlipModel(0.0, report.scales).for_target("layers.0.weight")
        mask = fault_model.sample_mask_for(model.get_parameter("layers.0.weight").data, rng)
        assert count_set_bits(mask) == 0

    def test_sample_mask_without_values_rejected(self, quantized_setup, rng):
        _, report = quantized_setup
        fault_model = QuantizedBitFlipModel(0.1, report.scales)
        with pytest.raises(NotImplementedError):
            fault_model.sample_mask((3,), rng)

    def test_expected_flips_uses_8_bits(self, quantized_setup):
        _, report = quantized_setup
        fault_model = QuantizedBitFlipModel(0.01, report.scales)
        assert fault_model.expected_flips(100) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            QuantizedBitFlipModel(1.5, {"*": 1.0})
        with pytest.raises(ValueError):
            QuantizedBitFlipModel(0.1, {})
        with pytest.raises(ValueError):
            QuantizedBitFlipModel(0.1, {"w": 0.0})

    def test_missing_scale_raises(self, rng):
        fault_model = QuantizedBitFlipModel(0.1, {"a": 1.0}).for_target("b")
        with pytest.raises(KeyError):
            fault_model.sample_mask_for(np.zeros(3, dtype=np.float32), rng)


class TestInt8Resilience:
    def test_int8_more_resilient_than_float32_per_bit(self, trained_mlp, moons_eval):
        """The A6 headline: at equal per-bit flip probability, int8 storage
        degrades far less than float32 (no exponent bits to hit)."""
        from repro.core import BayesianFaultInjector
        from repro.faults import TargetSpec
        from repro.nn import paper_mlp

        eval_x, eval_y = moons_eval
        p = 1e-3

        float_injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        float_campaign = float_injector.forward_campaign(p, samples=150)

        quantized = paper_mlp(rng=0)
        quantized.load_state_dict(trained_mlp.state_dict())
        report = quantize_model(quantized)
        int8_injector = BayesianFaultInjector(
            quantized.eval(), eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        int8_campaign = int8_injector.forward_campaign(
            p, samples=150, fault_model=QuantizedBitFlipModel(p, report.scales), stream="int8"
        )
        assert int8_campaign.posterior.excess_error < float_campaign.posterior.excess_error
