"""Utility layer: RNG factory, logging, timing."""

import logging
import time

import numpy as np
import pytest

from repro.utils import RngFactory, Timer, as_generator, get_logger, spawn_generators
from repro.utils.logging import set_verbosity


class TestAsGenerator:
    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_deterministic(self):
        assert as_generator(5).random() == as_generator(5).random()

    def test_none_allowed(self):
        assert isinstance(as_generator(None), np.random.Generator)


class TestSpawn:
    def test_count_and_independence(self):
        gens = spawn_generators(0, 3)
        assert len(gens) == 3
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 3

    def test_deterministic(self):
        a = [g.random() for g in spawn_generators(9, 2)]
        b = [g.random() for g in spawn_generators(9, 2)]
        assert a == b

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestRngFactory:
    def test_same_name_same_stream(self):
        factory = RngFactory(1)
        assert factory.stream("x").random() == factory.stream("x").random()

    def test_different_names_differ(self):
        factory = RngFactory(1)
        assert factory.stream("x").random() != factory.stream("y").random()

    def test_different_roots_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_child_independent(self):
        factory = RngFactory(3)
        child = factory.child("sub")
        assert child.stream("x").random() != factory.stream("x").random()

    def test_root_seed_property_and_repr(self):
        factory = RngFactory(42)
        assert factory.root_seed == 42
        assert "42" in repr(factory)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")


class TestLogging:
    def test_namespaced_logger(self):
        logger = get_logger("mcmc")
        assert logger.name == "repro.mcmc"

    def test_already_prefixed(self):
        assert get_logger("repro.core").name == "repro.core"

    def test_set_verbosity(self):
        set_verbosity("DEBUG")
        assert logging.getLogger("repro").level == logging.DEBUG
        set_verbosity("WARNING")


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01

    def test_restart(self):
        timer = Timer()
        with timer:
            pass
        timer.restart()
        assert timer.elapsed == 0.0
