"""Atomic, checksummed persistence primitives."""

import json
import math
import os

import numpy as np
import pytest

from repro.utils.persist import (
    CHECKSUM_KEY,
    ChecksumError,
    atomic_write_bytes,
    atomic_write_json,
    canonical_dumps,
    float_from_json,
    payload_checksum,
    read_checked_json,
    sanitize_nonfinite,
)


class TestSanitize:
    def test_nan_becomes_null(self):
        clean = sanitize_nonfinite({"a": float("nan"), "b": [1.0, float("nan")]})
        assert clean == {"a": None, "b": [1.0, None]}

    def test_infinities_become_strings(self):
        clean = sanitize_nonfinite([float("inf"), float("-inf"), 2.5])
        assert clean == ["inf", "-inf", 2.5]

    def test_finite_values_pass_through_exactly(self):
        value = 0.1 + 0.2  # not exactly 0.3; must not be perturbed
        assert sanitize_nonfinite({"v": value})["v"] == value

    def test_sanitized_payload_is_valid_json(self):
        clean = sanitize_nonfinite({"r_hat": float("nan"), "ess": float("inf")})
        text = json.dumps(clean, allow_nan=False)  # raises if any NaN survived
        assert json.loads(text) == {"r_hat": None, "ess": "inf"}

    def test_float_from_json_restores(self):
        assert math.isnan(float_from_json(None))
        assert float_from_json(None, default=0.0) == 0.0
        assert float_from_json("inf") == float("inf")
        assert float_from_json("-inf") == float("-inf")
        assert float_from_json(1.25) == 1.25

    def test_round_trip_through_json_text(self):
        payload = {"nan": float("nan"), "inf": float("inf"), "x": 3.14}
        restored = json.loads(json.dumps(sanitize_nonfinite(payload), allow_nan=False))
        assert math.isnan(float_from_json(restored["nan"]))
        assert float_from_json(restored["inf"]) == float("inf")
        assert restored["x"] == 3.14


class TestChecksums:
    def test_canonical_dumps_is_order_insensitive(self):
        assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps({"a": 2, "b": 1})

    def test_checksum_changes_with_content(self):
        assert payload_checksum({"x": 1}) != payload_checksum({"x": 2})

    def test_unsanitised_nan_is_a_loud_error(self):
        with pytest.raises(ValueError):
            canonical_dumps({"x": float("nan")})


class TestAtomicWrites:
    def test_json_round_trip(self, tmp_path):
        path = str(tmp_path / "result.json")
        payload = {"series": [1.0, 2.5], "name": "E1", "nan_field": float("nan")}
        atomic_write_json(path, payload)
        record = read_checked_json(path)
        assert record["series"] == [1.0, 2.5]
        assert record["name"] == "E1"
        assert record["nan_field"] is None
        assert CHECKSUM_KEY not in record

    def test_corruption_detected(self, tmp_path):
        path = str(tmp_path / "result.json")
        atomic_write_json(path, {"value": 1.0})
        text = open(path).read().replace("1.0", "2.0")
        with open(path, "w") as handle:
            handle.write(text)
        with pytest.raises(ChecksumError, match="checksum mismatch"):
            read_checked_json(path)

    def test_legacy_file_without_checksum_loads(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as handle:
            json.dump({"value": 7}, handle)
        assert read_checked_json(path) == {"value": 7}

    def test_leftover_tmp_file_is_harmless(self, tmp_path):
        """A crash between tmp-write and rename leaves only a .tmp orphan:
        the real path either has the old content or the new, never garbage."""
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"generation": 1})
        # simulate the debris of a crashed second write
        with open(path + ".orphan.tmp", "w") as handle:
            handle.write('{"generation": 2, "torn":')
        assert read_checked_json(path)["generation"] == 1

    def test_write_replaces_atomically(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"old")
        atomic_write_bytes(path, b"new")
        assert open(path, "rb").read() == b"new"
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_failed_serialisation_leaves_no_debris(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"obj": object()})
        assert not os.path.exists(path)
        assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []

    def test_numpy_scalars_survive_checksum_verification(self, tmp_path):
        """Writer-side numpy types must hash identically to the plain-JSON
        values a reader recomputes the checksum from."""
        path = str(tmp_path / "np.json")
        atomic_write_json(
            path,
            {"arr": np.array([1.0, 2.0]).tolist(), "n": int(np.int64(5))},
        )
        record = read_checked_json(path)
        assert record == {"arr": [1.0, 2.0], "n": 5}
