"""Protection allocation and measured scheme evaluation."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.protect import ProtectionScheme, allocate_protection, evaluate_scheme
from repro.sensitivity import TaylorSensitivity


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


@pytest.fixture()
def sensitivity(trained_mlp, moons_eval, injector):
    eval_x, eval_y = moons_eval
    return TaylorSensitivity(trained_mlp, eval_x, eval_y, injector.parameter_targets)


class TestAllocation:
    def test_respects_budget(self, injector, sensitivity):
        for budget in (0.1, 0.3, 0.6):
            scheme = allocate_protection(sensitivity, budget_fraction=budget)
            assert scheme.overhead_fraction(injector.parameter_targets) <= budget + 1e-9

    def test_prefers_exponent_fields(self, sensitivity):
        # At a tight budget, the catastrophic exponent sites dominate the
        # damage score, so allocated lanes must be exponent lanes.
        scheme = allocate_protection(sensitivity, budget_fraction=0.3)
        allocated_lanes = set()
        for lanes in scheme.lanes_by_target.values():
            allocated_lanes |= lanes
        assert allocated_lanes, "budget 0.3 must allocate something"
        assert frozenset(range(23, 31)) & allocated_lanes

    def test_bigger_budget_allocates_superset_overhead(self, injector, sensitivity):
        small = allocate_protection(sensitivity, budget_fraction=0.1)
        large = allocate_protection(sensitivity, budget_fraction=0.9)
        assert large.overhead_bits(injector.parameter_targets) >= small.overhead_bits(
            injector.parameter_targets
        )

    def test_validation(self, sensitivity):
        with pytest.raises(ValueError):
            allocate_protection(sensitivity, budget_fraction=0.0)
        with pytest.raises(ValueError):
            allocate_protection(sensitivity, budget_fraction=1.5)


class TestEvaluateScheme:
    def test_full_protection_recovers_golden(self, injector):
        comparison = evaluate_scheme(injector, ProtectionScheme.full(), p=5e-3, samples=80)
        assert comparison.protected_error == pytest.approx(injector.golden_error, abs=1e-9)
        assert comparison.recovery_fraction == pytest.approx(1.0, abs=0.05)

    def test_no_protection_changes_nothing_statistically(self, injector):
        comparison = evaluate_scheme(injector, ProtectionScheme.none(), p=5e-3, samples=120)
        assert abs(comparison.protected_error - comparison.unprotected_error) < 0.08

    def test_exponent_protection_recovers_most_error(self, injector):
        scheme = ProtectionScheme.field_everywhere("exponent")
        comparison = evaluate_scheme(injector, scheme, p=5e-3, samples=120)
        assert comparison.recovery_fraction > 0.5
        assert comparison.overhead_fraction == pytest.approx(0.25)

    def test_allocated_scheme_beats_unprotected(self, injector, sensitivity):
        scheme = allocate_protection(sensitivity, budget_fraction=0.3)
        comparison = evaluate_scheme(injector, scheme, p=5e-3, samples=120)
        assert comparison.protected_error < comparison.unprotected_error
        assert comparison.error_averted > 0

    def test_summary_row_keys(self, injector):
        comparison = evaluate_scheme(injector, ProtectionScheme.none(), p=1e-3, samples=20)
        assert {"p", "unprotected_pct", "protected_pct", "recovered_frac"} <= set(
            comparison.summary_row()
        )

    def test_recovery_fraction_clamped(self):
        from repro.protect.allocation import ProtectionComparison

        comparison = ProtectionComparison(
            p=1e-3, unprotected_error=0.01, protected_error=0.02,
            golden_error=0.01, overhead_fraction=0.0,
        )
        assert comparison.recovery_fraction == 0.0
