"""Margin-based runtime guard."""

import numpy as np
import pytest

from repro.faults import BernoulliBitFlipModel, TargetSpec, resolve_parameter_targets
from repro.protect import MarginGuard


@pytest.fixture()
def guard(trained_mlp):
    return MarginGuard(trained_mlp)


@pytest.fixture()
def targets(trained_mlp):
    return resolve_parameter_targets(trained_mlp, TargetSpec.weights_and_biases())


class TestMargins:
    def test_margins_nonnegative(self, guard, moons_eval):
        eval_x, _ = moons_eval
        margins = guard.margins(eval_x)
        assert (margins >= 0).all()
        assert margins.shape == (len(eval_x),)

    def test_calibrate_hits_requested_fraction(self, guard, moons_eval):
        eval_x, _ = moons_eval
        threshold = guard.calibrate(eval_x, 0.2)
        flagged = guard.flags(eval_x, threshold)
        assert flagged.mean() == pytest.approx(0.2, abs=0.05)

    def test_calibrate_validation(self, guard, moons_eval):
        eval_x, _ = moons_eval
        with pytest.raises(ValueError):
            guard.calibrate(eval_x, 0.0)

    def test_low_margin_points_near_boundary(self, guard, trained_mlp, moons_eval):
        """Margin is the boundary-distance proxy: flagged two-moons points
        must sit between the moons (|y - 0.25| small-ish on average)."""
        eval_x, _ = moons_eval
        threshold = guard.calibrate(eval_x, 0.15)
        flagged = guard.flags(eval_x, threshold)
        # The moons interleave around y ≈ 0.25; flagged points cluster there.
        flagged_dist = np.abs(eval_x[flagged][:, 1] - 0.25).mean()
        unflagged_dist = np.abs(eval_x[~flagged][:, 1] - 0.25).mean()
        assert flagged_dist < unflagged_dist


class TestGuardEvaluation:
    def test_capture_exceeds_flag_fraction(self, guard, moons_eval, targets):
        """The F1 effect: fault-induced flips concentrate on low-margin
        inputs, so captured% must beat flagged% (better than random)."""
        eval_x, _ = moons_eval
        threshold = guard.calibrate(eval_x, 0.2)
        # Small p: benign flips dominate, whose misclassifications are the
        # near-boundary ones F1 describes. (At large p, severe flips corrupt
        # predictions everywhere and the margin advantage shrinks.)
        evaluation = guard.evaluate(
            eval_x, threshold, BernoulliBitFlipModel(1e-4), targets,
            samples=300, rng=np.random.default_rng(0),
        )
        assert evaluation.flagged_fraction == pytest.approx(0.2, abs=0.05)
        assert evaluation.capture_fraction > evaluation.flagged_fraction + 0.05

    def test_coverage_curve_monotone_in_budget(self, guard, moons_eval, targets):
        eval_x, _ = moons_eval
        curve = guard.coverage_curve(
            eval_x, BernoulliBitFlipModel(1e-3), targets,
            flag_fractions=(0.1, 0.4), samples=100, rng=1,
        )
        assert curve[0].flagged_fraction < curve[1].flagged_fraction
        assert curve[0].capture_fraction <= curve[1].capture_fraction + 0.1

    def test_summary_row(self, guard, moons_eval, targets):
        eval_x, _ = moons_eval
        evaluation = guard.evaluate(
            eval_x, guard.calibrate(eval_x, 0.3), BernoulliBitFlipModel(1e-3),
            targets, samples=30, rng=np.random.default_rng(2),
        )
        assert {"threshold", "flagged_%", "captured_%"} <= set(evaluation.summary_row())

    def test_validation(self, guard, moons_eval, targets):
        eval_x, _ = moons_eval
        with pytest.raises(ValueError):
            guard.evaluate(eval_x, 0.5, BernoulliBitFlipModel(1e-3), targets,
                           samples=0, rng=np.random.default_rng(0))
