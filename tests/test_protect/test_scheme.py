"""Protection schemes and the protected fault model."""

import math

import numpy as np
import pytest

from repro.bits import count_set_bits, field_mask
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, resolve_parameter_targets
from repro.nn import paper_mlp
from repro.protect import ProtectedFaultModel, ProtectionScheme


@pytest.fixture(scope="module")
def targets():
    return resolve_parameter_targets(paper_mlp(rng=0), TargetSpec.weights_and_biases())


class TestProtectionScheme:
    def test_none_protects_nothing(self, targets):
        scheme = ProtectionScheme.none()
        assert scheme.protected_lanes("anything") == frozenset()
        assert scheme.overhead_bits(targets) == 0

    def test_field_everywhere(self):
        scheme = ProtectionScheme.field_everywhere("exponent")
        lanes = scheme.protected_lanes("any.target")
        assert lanes == frozenset(range(23, 31))

    def test_full_protects_all(self, targets):
        scheme = ProtectionScheme.full()
        assert scheme.overhead_fraction(targets) == pytest.approx(1.0)

    def test_specific_target_overrides_wildcard(self):
        scheme = ProtectionScheme({"*": frozenset({31}), "layers.0.weight": frozenset({0, 1})})
        assert scheme.protected_lanes("layers.0.weight") == frozenset({0, 1})
        assert scheme.protected_lanes("layers.2.weight") == frozenset({31})

    def test_protection_mask_bits(self):
        scheme = ProtectionScheme.field_everywhere("sign")
        assert int(scheme.protection_mask("x")) == int(field_mask("sign"))

    def test_overhead_fraction(self, targets):
        scheme = ProtectionScheme.field_everywhere("exponent")
        assert scheme.overhead_fraction(targets) == pytest.approx(8 / 32)

    def test_merged_with(self):
        a = ProtectionScheme.field_everywhere("sign")
        b = ProtectionScheme.field_everywhere("exponent")
        merged = a.merged_with(b)
        assert merged.protected_lanes("x") == frozenset(range(23, 32))

    def test_invalid_lane_rejected(self):
        with pytest.raises(ValueError):
            ProtectionScheme({"w": frozenset({32})})

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            ProtectionScheme.none().overhead_fraction([])


class TestProtectedFaultModel:
    def test_protected_lanes_never_flip(self, targets, rng):
        base = BernoulliBitFlipModel(0.5)
        scheme = ProtectionScheme.field_everywhere("exponent")
        model = ProtectedFaultModel(base, scheme)
        mask = model.for_target("w").sample_mask((200,), rng)
        assert not np.any(mask & np.uint32(int(field_mask("exponent"))))
        assert count_set_bits(mask) > 0  # unprotected lanes still flip

    def test_full_protection_yields_empty_masks(self, targets, rng):
        model = ProtectedFaultModel(BernoulliBitFlipModel(0.9), ProtectionScheme.full())
        mask = model.sample_mask((50,), rng)
        assert count_set_bits(mask) == 0

    def test_log_prob_minus_inf_on_protected_flip(self):
        model = ProtectedFaultModel(
            BernoulliBitFlipModel(0.5), ProtectionScheme.field_everywhere("sign")
        )
        forbidden = np.array([np.uint32(1) << np.uint32(31)], dtype=np.uint32)
        assert model.log_prob_mask(forbidden) == -math.inf

    def test_log_prob_delegates_for_allowed_masks(self):
        base = BernoulliBitFlipModel(0.25)
        model = ProtectedFaultModel(base, ProtectionScheme.field_everywhere("sign"))
        allowed = np.array([0b111], dtype=np.uint32)
        assert model.log_prob_mask(allowed) == pytest.approx(base.log_prob_mask(allowed))

    def test_expected_flips_scaled_by_unprotected_lanes(self):
        base = BernoulliBitFlipModel(0.01)
        model = ProtectedFaultModel(base, ProtectionScheme.field_everywhere("exponent"))
        assert model.expected_flips(100) == pytest.approx(100 * 24 * 0.01)

    def test_for_target_binds_lane_set(self, rng):
        scheme = ProtectionScheme({"a": frozenset(range(32)), "b": frozenset()})
        model = ProtectedFaultModel(BernoulliBitFlipModel(0.9), scheme)
        assert count_set_bits(model.for_target("a").sample_mask((20,), rng)) == 0
        assert count_set_bits(model.for_target("b").sample_mask((20,), rng)) > 0

    def test_configuration_sampling_respects_protection(self, targets, rng):
        scheme = ProtectionScheme({"layers.0.weight": frozenset(range(32))})
        model = ProtectedFaultModel(BernoulliBitFlipModel(0.3), scheme)
        cfg = FaultConfiguration.sample(targets, model, rng)
        assert cfg.flips_per_target()["layers.0.weight"] == 0
        assert cfg.total_flips() > 0
