"""Observability wired through campaigns, executors, and journals.

The load-bearing properties:

* instrumentation is *passive* — campaigns are bit-identical with and
  without every instrument attached;
* the digest-merge-once discipline — driver counter totals from a real
  worker pool equal a sequential run's exactly, and journal-restored
  results still contribute their stamped digests;
* liveness — progress events stream during adaptive campaigns and
  heartbeats surface slow workers before any timeout fires.
"""

import dataclasses
import functools
import logging
import math
import os
import time

import numpy as np
import pytest

import repro.obs as obs
from repro.exec import (
    CampaignJournal,
    ForwardSpec,
    InjectorRecipe,
    ParallelCampaignExecutor,
)
from repro.exec.executor import ExecutionStats
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.obs import MemorySink
from repro.utils.logging import get_verbosity, set_verbosity

P_GRID_4 = tuple(np.logspace(-4, -1, 4))


def _sleepy_builder(delay_s: float):
    time.sleep(delay_s)
    return paper_mlp(rng=0)


class TestCampaignDigest:
    def test_digest_stamped_even_without_instruments(self, make_injector):
        result = make_injector().run(ForwardSpec(p=1e-2, samples=24))
        counters = result.metrics["counters"]
        assert counters["campaigns"] == 1
        assert counters["evaluations"] == result.total_evaluations
        assert "campaign.duration_s" in result.metrics["histograms"]

    def test_detailed_counters_satisfy_flip_invariants(self, make_injector):
        obs.configure(metrics=True)
        result = make_injector().run(ForwardSpec(p=1e-2, samples=24))
        counters = result.metrics["counters"]
        # every recorded step is one forward pass of one sampled configuration
        assert counters["forward_passes"] == counters["evaluations"]
        applied = counters["flips.applied"]
        by_field = sum(v for k, v in counters.items() if k.startswith("flips.field."))
        by_layer = sum(v for k, v in counters.items() if k.startswith("flips.layer."))
        assert by_field == applied == by_layer
        assert applied > 0  # p=1e-2 over ~100 parameters flips something
        # the same digest landed in the driver registry
        assert obs.metrics().counters()["evaluations"] == counters["evaluations"]

    def test_digest_roundtrips_through_to_dict(self, make_injector):
        from repro.core.campaign import CampaignResult

        result = make_injector().run(ForwardSpec(p=1e-2, samples=16))
        restored = CampaignResult.from_dict(result.to_dict())
        assert restored.metrics["counters"] == result.metrics["counters"]

    def test_instrumented_campaign_is_bit_identical(self, make_injector):
        spec = ForwardSpec(p=1e-2, samples=24)
        bare = make_injector().run(spec)
        obs.configure(metrics=True, tracer=True, progress=MemorySink())
        instrumented = make_injector().run(spec)
        assert np.array_equal(bare.chains.matrix(), instrumented.chains.matrix())
        assert np.array_equal(bare.posterior.samples, instrumented.posterior.samples)

    def test_campaign_spans_recorded(self, make_injector):
        obs.configure(tracer=True)
        make_injector().run(ForwardSpec(p=1e-2, samples=16))
        names = {event["name"] for event in obs.tracer().events}
        assert "campaign.forward" in names
        assert "chain.forward" in names


class TestEvaluationRate:
    def test_zero_duration_yields_nan_not_inf(self, make_injector):
        result = make_injector().run(ForwardSpec(p=1e-3, samples=8))
        stale = dataclasses.replace(result, duration_s=0.0)
        assert math.isnan(stale.evaluations_per_second)
        assert stale.summary_row()["evals_per_s"] == "n/a"

    def test_positive_duration_yields_rate(self, make_injector):
        result = make_injector().run(ForwardSpec(p=1e-3, samples=8))
        timed = dataclasses.replace(result, duration_s=2.0)
        assert timed.summary_row()["evals_per_s"] == timed.total_evaluations / 2.0


class TestLiveProgress:
    def test_adaptive_campaign_streams_mixing_diagnostics(self, make_injector):
        sink = MemorySink()
        obs.configure(progress=sink)
        make_injector().run_until_complete(p=1e-2, chains=2, batch_steps=10, max_steps=20)
        events = sink.of_kind("adaptive.progress")
        assert events  # one per batch assessment
        payload = events[-1].payload
        for key in ("p", "steps", "complete", "r_hat", "ess", "window_r_hat"):
            assert key in payload
        assert payload["steps"] == 20

    def test_forward_chains_checkpoint_every_50_steps(self, make_injector):
        sink = MemorySink()
        obs.configure(progress=sink)
        make_injector().run(ForwardSpec(p=1e-2, samples=200, chains=2))  # 100 steps/chain
        events = sink.of_kind("chain.progress")
        assert len(events) == 4  # 2 chains x steps {50, 100}
        assert {e.payload["sampler"] for e in events} == {"forward"}


class TestExecutorParity:
    def test_pool_counters_equal_sequential_counters(self, recipe):
        specs = [ForwardSpec(p=p, samples=16) for p in P_GRID_4]

        def run(workers):
            obs.reset()
            obs.configure(metrics=True)
            executor = ParallelCampaignExecutor(recipe, workers=workers)
            results = executor.run(list(specs))
            return results, obs.metrics().counters()

        sequential_results, sequential_counters = run(1)
        parallel_results, parallel_counters = run(4)
        # the acceptance criterion: per-worker digests reduce to the exact
        # totals a sequential run records, and results stay bit-identical
        assert parallel_counters == sequential_counters
        assert sequential_counters["executor.tasks"] == len(specs)
        assert sequential_counters["campaigns"] == len(specs)
        for seq, par in zip(sequential_results, parallel_results):
            assert np.array_equal(seq.chains.matrix(), par.chains.matrix())

    def test_worker_trace_events_merge_into_driver(self, recipe):
        obs.configure(tracer=True)
        executor = ParallelCampaignExecutor(recipe, workers=2)
        executor.run([ForwardSpec(p=p, samples=8) for p in P_GRID_4[:2]])
        workers = {
            event["pid"]
            for event in obs.tracer().events
            if event["name"] == "worker.task"
        }
        assert workers and os.getpid() not in workers  # honest per-process tags
        names = {event["name"] for event in obs.tracer().events}
        assert "campaign.forward" in names  # worker-side campaign spans shipped home

    def test_executor_publishes_lifecycle_events(self, recipe):
        sink = MemorySink()
        obs.configure(progress=sink)
        ParallelCampaignExecutor(recipe, workers=2).run(
            [ForwardSpec(p=p, samples=8) for p in P_GRID_4[:2]]
        )
        assert len(sink.of_kind("executor.task_done")) == 2
        (done,) = sink.of_kind("executor.complete")
        assert done.payload["tasks"] == 2 and done.payload["parallel"] is True


class TestHeartbeats:
    def test_slow_worker_beats_before_completing(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        sleepy = InjectorRecipe.from_model(
            trained_mlp,
            eval_x,
            eval_y,
            spec=TargetSpec.weights_and_biases(),
            seed=7,
            model_builder=functools.partial(_sleepy_builder, 0.6),
        )
        sink = MemorySink()
        obs.configure(progress=sink)
        executor = ParallelCampaignExecutor(sleepy, workers=2, heartbeat_s=0.1)
        (result,) = executor.run([ForwardSpec(p=1e-2, samples=8)])
        assert result.mean_error >= 0.0  # the slow task still completed
        beats = sink.of_kind("executor.heartbeat")
        assert beats and executor.stats.heartbeats == len(beats)
        payload = beats[0].payload
        assert payload["elapsed_s"] > 0.0 and payload["pid"] != os.getpid()

    def test_heartbeat_interval_must_be_positive(self, recipe):
        with pytest.raises(ValueError):
            ParallelCampaignExecutor(recipe, workers=2, heartbeat_s=0.0)


class TestWorkerPropagation:
    def test_config_captures_driver_state(self):
        set_verbosity(logging.DEBUG)
        obs.configure(metrics=True, tracer=True)
        config = obs.worker_config()
        assert config.verbosity == logging.DEBUG
        assert config.trace and config.detailed_metrics

    def test_apply_installs_fresh_instruments(self):
        set_verbosity(logging.WARNING)
        obs.apply_worker_config(
            obs.WorkerObsConfig(verbosity=logging.DEBUG, trace=True, detailed_metrics=True)
        )
        assert get_verbosity() == logging.DEBUG
        assert obs.metrics() is not None
        assert obs.tracer().enabled and len(obs.tracer()) == 0  # nothing inherited
        assert obs.progress() is None  # sinks never cross the process boundary

    def test_default_config_disables_everything(self):
        obs.configure(metrics=True, tracer=True, progress=MemorySink())
        obs.apply_worker_config(obs.WorkerObsConfig())
        assert obs.metrics() is None and not obs.tracer().enabled


class TestJournalDigests:
    def test_restored_results_still_feed_driver_totals(self, recipe, tmp_path):
        specs = [ForwardSpec(p=p, samples=16) for p in P_GRID_4[:2]]
        path = str(tmp_path / "journal.jsonl")

        obs.configure(metrics=True)
        journal = CampaignJournal(path)
        ParallelCampaignExecutor(recipe, workers=1, journal=journal).run(list(specs))
        journal.close()
        first = obs.metrics().counters()

        obs.reset()
        obs.configure(metrics=True)
        journal = CampaignJournal(path)
        executor = ParallelCampaignExecutor(recipe, workers=1, journal=journal)
        executor.run(list(specs))
        journal.close()
        second = obs.metrics().counters()

        assert executor.stats.journal_hits == len(specs)
        # campaign-level totals are identical whether the work ran or was
        # restored; only the executor's own bookkeeping differs
        strip = lambda c: {k: v for k, v in c.items() if not k.startswith("executor.")}  # noqa: E731
        assert strip(second) == strip(first)
        assert second["executor.journal_hits"] == len(specs)


class TestStatsSummary:
    def test_summary_mentions_only_nonzero_extras(self):
        quiet = ExecutionStats(tasks=3, duration_s=0.5, parallel=False)
        assert quiet.summary() == "3 task(s) in 0.50s (sequential, 6.0 tasks/s)"
        noisy = ExecutionStats(
            tasks=4,
            duration_s=0.15,
            parallel=True,
            retries_by_cause={"crash": 1},
            timeouts=2,
        )
        assert noisy.summary() == (
            "4 task(s) in 0.15s (parallel, 26.7 tasks/s); retries 1 (crash 1), timeouts 2"
        )

    def test_summary_omits_rate_without_duration(self):
        stats = ExecutionStats(tasks=2, duration_s=0.0, parallel=False)
        assert stats.summary() == "2 task(s) in 0.00s (sequential)"

    def test_summary_reports_worst_heartbeat_gap(self):
        stats = ExecutionStats(
            tasks=1, duration_s=1.0, parallel=True, worst_heartbeat_gap_s=0.37
        )
        assert "worst heartbeat gap 0.37s" in stats.summary()

    def test_note_gap_keeps_the_maximum(self):
        stats = ExecutionStats()
        stats.note_gap(0.2)
        stats.note_gap(0.9)
        stats.note_gap(0.5)
        assert stats.worst_heartbeat_gap_s == 0.9

    def test_to_dict_carries_accounting_and_health(self):
        stats = ExecutionStats(tasks=3, duration_s=0.5, parallel=True)
        stats.count_retry("crash")
        record = stats.to_dict()
        assert record["tasks"] == 3
        assert record["completed"] == 3 and record["failed"] == 0
        assert record["parallel"] is True
        assert record["retries"] == 1 and record["retries_by_cause"]["crash"] == 1
        assert "worst_heartbeat_gap_s" in record
