"""``repro top``: the pure renderer, JSONL replay, and the poll loop.

The dashboard renders from a ``/status`` document, which comes from the
same :class:`StatusTracker` fold whether the source is a live server or
a replayed ``progress.jsonl`` — so the tests drive both paths through
one renderer and assert on plain text.
"""

import io
import json

import repro.obs as obs
from repro.obs import JsonlSink
from repro.obs.server import SseSink, StatusServer, StatusTracker
from repro.obs.top import _replay_jsonl, render_dashboard, run_top, status_source


def _status(**overrides):
    base = {
        "running": True,
        "tasks": {
            "total": 10,
            "completed": 4,
            "failed": 1,
            "remaining": 5,
            "retries": 2,
            "retries_by_cause": {"crash": 2},
        },
        "rate_per_s": 2.5,
        "eta_s": 2.0,
        "heartbeats": 7,
        "workers": {"3": {"pid": 123, "attempt": 1, "elapsed_s": 1.5, "heartbeat_age_s": 0.2}},
        "journal": {"records": 5, "quarantined": 1},
        "chaos_fired": {"worker.sigkill": 2},
        "sweep": {"points_done": 3, "last": {"p": 1e-3}},
        "adaptive": None,
        "last_complete": None,
        "events_seen": 42,
    }
    base.update(overrides)
    return base


class TestRenderDashboard:
    def test_frame_carries_the_load_bearing_numbers(self):
        frame = render_dashboard(_status(), source="http://localhost:1")
        assert "repro top — http://localhost:1" in frame
        assert "tasks 5/10" in frame
        assert "retries 2 {'crash': 2}" in frame
        assert "rate      2.50 tasks/s" in frame
        assert "eta 2.0s" in frame
        assert "journal   5 record(s)" in frame and "quarantined 1" in frame
        assert "chaos     worker.sigkill=2" in frame
        assert "sweep     3 point(s) done" in frame
        assert "123" in frame  # the worker pid row

    def test_empty_status_renders_without_error(self):
        frame = render_dashboard({})
        assert "workers: none beating" in frame
        assert "tasks 0/0" in frame

    def test_completed_run_shows_the_summary_line(self):
        frame = render_dashboard(
            _status(
                running=False,
                workers={},
                last_complete={"tasks": 10, "duration_s": 3.0, "failed": 1},
            )
        )
        assert "idle" in frame
        assert "done: 10 task(s) in 3.0s, failed 1" in frame


class TestReplay:
    def test_replay_folds_the_jsonl_into_a_status(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        obs.configure(progress=sink)
        obs.publish("executor.start", tasks=3, workers=2)
        obs.publish("executor.heartbeat", task=0, pid=111, attempt=1, elapsed_s=0.5)
        obs.publish("executor.task_done", task=1)
        obs.publish("journal.append", key="k", records=1)
        obs.publish("chaos.fired", site="pipe.drop")
        sink.close()

        status = _replay_jsonl(path)
        assert status["tasks"]["total"] == 3
        assert status["tasks"]["completed"] == 1
        assert status["journal"]["records"] == 1
        assert status["chaos_fired"] == {"pipe.drop": 1}
        # JSONL serialisation lets the envelope pid win (payload keys can
        # never clobber the envelope), so replay reports the publisher's
        # pid — present, not None
        import os

        assert status["workers"]["0"]["pid"] == os.getpid()

    def test_replay_skips_header_and_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"kind": "progress.header", "schema_version": 1}) + "\n"
            + json.dumps({"kind": "executor.start", "tasks": 2, "workers": 1, "wall_time": 1.0}) + "\n"
            + '{"kind": "executor.task_done", "ta',  # torn mid-write
            encoding="utf-8",
        )
        status = _replay_jsonl(str(path))
        assert status["tasks"]["total"] == 2
        assert status["tasks"]["completed"] == 0
        assert status["events_seen"] == 1


class TestRunTop:
    def test_one_frame_from_a_jsonl_file(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        obs.configure(progress=sink)
        obs.publish("executor.start", tasks=2, workers=1)
        obs.publish("executor.task_done", task=0)
        sink.close()

        out = io.StringIO()
        code = run_top(path, interval_s=0.01, frames=1, stream=out, clear=False)
        assert code == 0
        assert "tasks 1/2" in out.getvalue()

    def test_one_frame_from_a_live_server(self):
        tracker = StatusTracker()
        server = StatusServer(port=0, tracker=tracker, sse=SseSink()).start()
        try:
            out = io.StringIO()
            code = run_top(server.url, interval_s=0.01, frames=1, stream=out, clear=False)
            assert code == 0
            assert "repro top" in out.getvalue()
            assert "server up" in out.getvalue()
        finally:
            server.stop()

    def test_unreachable_source_fails_after_retries(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9/", interval_s=0.0, frames=None, stream=out, clear=False
        )
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_source_dispatch(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text("", encoding="utf-8")
        status = status_source(str(path))()  # file source: replays the JSONL
        assert status["tasks"]["total"] == 0 and status["events_seen"] == 0
