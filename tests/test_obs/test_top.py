"""``repro top``: the pure renderer, JSONL replay, and the poll loop.

The dashboard renders from a ``/status`` document, which comes from the
same :class:`StatusTracker` fold whether the source is a live server or
a replayed ``progress.jsonl`` — so the tests drive both paths through
one renderer and assert on plain text.
"""

import io
import json

import repro.obs as obs
from repro.obs import JsonlSink
from repro.obs.server import SseSink, StatusServer, StatusTracker
from repro.obs.top import (
    _fmt_duration,
    _histogram_quantile,
    _replay_jsonl,
    render_dashboard,
    run_top,
    status_source,
    summarize_metrics,
)


def _status(**overrides):
    base = {
        "running": True,
        "tasks": {
            "total": 10,
            "completed": 4,
            "failed": 1,
            "remaining": 5,
            "retries": 2,
            "retries_by_cause": {"crash": 2},
        },
        "rate_per_s": 2.5,
        "eta_s": 2.0,
        "heartbeats": 7,
        "workers": {"3": {"pid": 123, "attempt": 1, "elapsed_s": 1.5, "heartbeat_age_s": 0.2}},
        "journal": {"records": 5, "quarantined": 1},
        "chaos_fired": {"worker.sigkill": 2},
        "sweep": {"points_done": 3, "last": {"p": 1e-3}},
        "adaptive": None,
        "last_complete": None,
        "events_seen": 42,
    }
    base.update(overrides)
    return base


class TestRenderDashboard:
    def test_frame_carries_the_load_bearing_numbers(self):
        frame = render_dashboard(_status(), source="http://localhost:1")
        assert "repro top — http://localhost:1" in frame
        assert "tasks 5/10" in frame
        assert "retries 2 {'crash': 2}" in frame
        assert "rate      2.50 tasks/s" in frame
        assert "eta 2.0s" in frame
        assert "journal   5 record(s)" in frame and "quarantined 1" in frame
        assert "chaos     worker.sigkill=2" in frame
        assert "sweep     3 point(s) done" in frame
        assert "123" in frame  # the worker pid row

    def test_empty_status_renders_without_error(self):
        frame = render_dashboard({})
        assert "workers: none beating" in frame
        assert "tasks 0/0" in frame

    def test_completed_run_shows_the_summary_line(self):
        frame = render_dashboard(
            _status(
                running=False,
                workers={},
                last_complete={"tasks": 10, "duration_s": 3.0, "failed": 1},
            )
        )
        assert "idle" in frame
        assert "done: 10 task(s) in 3.0s, failed 1" in frame


def _estimator_doc(**overrides):
    from repro.obs.estimator import EstimatorTracker, StoppingTarget
    from repro.obs.progress import ProgressEvent

    tracker = EstimatorTracker(target=StoppingTarget(0.12))
    tracker.emit(
        ProgressEvent(
            kind="estimate",
            payload={
                "task": 0, "layer": "fc1", "bitfield": "all", "p": 1e-3,
                "trials": 200, "degraded_trials": list(range(30)),
            },
        )
    )
    tracker.emit(
        ProgressEvent(
            kind="estimate",
            payload={
                "task": 1, "layer": "fc2", "bitfield": "sign", "p": 1e-2,
                "trials": 6, "degraded_trials": [0],
            },
        )
    )
    doc = tracker.estimates()
    doc.update(overrides)
    return doc


class TestEstimatorPanel:
    def test_panel_sorts_worst_first_with_sparklines(self):
        frame = render_dashboard(_status(estimator=_estimator_doc()))
        lines = frame.splitlines()
        (header,) = [line for line in lines if line.strip().startswith("estimate")]
        assert "target ±0.12" in header and "converged 1/2" in header
        rows = [line for line in lines if "|" in line and "stratum" not in line]
        # the wide 6-trial stratum outranks the converged 200-trial one
        assert "fc2|sign|0.01" in rows[0] and "…" in rows[0]
        assert "fc1|all|0.001" in rows[1] and "ok@0" in rows[1]
        assert any(ch in rows[1] for ch in "▁▂▃▄▅▆▇█")

    def test_campaign_crossing_stamp_shown_when_all_converge(self):
        doc = _estimator_doc()
        doc["converged"] = {"converged": 2, "total": 2, "fraction": 1.0}
        doc["overall"]["crossed_at"] = 1
        frame = render_dashboard(_status(estimator=doc))
        assert "campaign crossed at task 1" in frame

    def test_empty_estimator_document_renders_nothing(self):
        frame = render_dashboard(_status(estimator={"tasks": 0, "strata": []}))
        assert "estimate" not in frame


class TestMetricsPanel:
    def test_histograms_render_as_quantile_summaries(self):
        from repro.obs.openmetrics import render_openmetrics

        text = render_openmetrics(
            {
                "histograms": {
                    "campaign.duration_s": {
                        "bounds": [0.1, 1.0, 5.0],
                        "counts": [2, 6, 1, 1],
                        "sum": 7.5,
                        "count": 10,
                    }
                },
                "gauges": {"executor.gap_s": 0.25},
                "counters": {"evaluations": 42},
            }
        )
        summary = summarize_metrics(text)
        hist = summary["histograms"]["repro_campaign_duration_s"]
        assert hist["count"] == 10
        assert 0.1 <= hist["p50"] <= 1.0
        assert hist["p90"] > hist["p50"]
        assert hist["overflow"] is True  # one observation beyond the last bound
        frame = render_dashboard(_status(metrics_summary=summary))
        assert "p50" in frame and "raw" not in frame
        assert "le=" not in frame  # buckets never leak into the dashboard
        assert "repro_evaluations" in frame and "repro_executor_gap_s" in frame

    def test_stratum_families_left_to_the_estimator_panel(self):
        from repro.obs.openmetrics import render_openmetrics

        text = render_openmetrics(
            None,
            families=[
                {"name": "stratum_mean", "type": "gauge", "samples": [({"layer": "x"}, 1.0)]},
                {"name": "ci_halfwidth", "type": "gauge", "samples": [({}, 0.1)]},
            ],
        )
        summary = summarize_metrics(text)
        assert "repro_stratum_mean" not in summary["gauges"]
        assert summary["gauges"]["repro_ci_halfwidth"] == 0.1

    def test_non_finite_gauges_display_na(self):
        summary = {"gauges": {"repro_eta": float("nan")}, "counters": {}, "histograms": {}}
        frame = render_dashboard(_status(metrics_summary=summary))
        assert "n/a" in frame and "nan" not in frame

    def test_quantile_interpolation(self):
        # 10 observations: 2 in (0, 1], 8 in (1, 2]
        bounds = [1.0, 2.0, float("inf")]
        cumulative = [2.0, 10.0, 10.0]
        assert _histogram_quantile(bounds, cumulative, 0.2) == 1.0
        assert _histogram_quantile(bounds, cumulative, 0.6) == 1.5
        assert _histogram_quantile(bounds, cumulative, 1.0) == 2.0
        assert _histogram_quantile(bounds, cumulative, 0.5) is not None
        assert _histogram_quantile([], [], 0.5) is None

    def test_nonfinite_duration_renders_na(self):
        assert _fmt_duration(float("nan")) == "n/a"
        assert _fmt_duration(float("inf")) == "n/a"
        assert _fmt_duration(None) == "--"
        assert _fmt_duration(3.0) == "3.0s"


class TestReplay:
    def test_replay_folds_the_jsonl_into_a_status(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        obs.configure(progress=sink)
        obs.publish("executor.start", tasks=3, workers=2)
        obs.publish("executor.heartbeat", task=0, pid=111, attempt=1, elapsed_s=0.5)
        obs.publish("executor.task_done", task=1)
        obs.publish("journal.append", key="k", records=1)
        obs.publish("chaos.fired", site="pipe.drop")
        sink.close()

        status = _replay_jsonl(path)
        assert status["tasks"]["total"] == 3
        assert status["tasks"]["completed"] == 1
        assert status["journal"]["records"] == 1
        assert status["chaos_fired"] == {"pipe.drop": 1}
        # JSONL serialisation lets the envelope pid win (payload keys can
        # never clobber the envelope), so replay reports the publisher's
        # pid — present, not None
        import os

        assert status["workers"]["0"]["pid"] == os.getpid()

    def test_replay_skips_header_and_torn_tail(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"kind": "progress.header", "schema_version": 1}) + "\n"
            + json.dumps({"kind": "executor.start", "tasks": 2, "workers": 1, "wall_time": 1.0}) + "\n"
            + '{"kind": "executor.task_done", "ta',  # torn mid-write
            encoding="utf-8",
        )
        status = _replay_jsonl(str(path))
        assert status["tasks"]["total"] == 2
        assert status["tasks"]["completed"] == 0
        assert status["events_seen"] == 1

    def test_replay_folds_estimate_events_like_the_live_server(self, tmp_path):
        from repro.obs.estimator import EstimatorTracker

        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        obs.configure(progress=sink)
        payload = {
            "task": 0, "layer": "all", "bitfield": "all", "p": 1e-2,
            "trials": 50, "degraded_trials": [3, 7],
        }
        obs.publish("estimate", **payload)
        sink.close()

        status = _replay_jsonl(path)
        live = EstimatorTracker()
        from repro.obs.progress import ProgressEvent

        live.emit(ProgressEvent(kind="estimate", payload=payload))
        assert status["estimator"] == live.estimates()
        frame = render_dashboard(status)
        assert "all|all|0.01" in frame


class TestRunTop:
    def test_one_frame_from_a_jsonl_file(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        obs.configure(progress=sink)
        obs.publish("executor.start", tasks=2, workers=1)
        obs.publish("executor.task_done", task=0)
        sink.close()

        out = io.StringIO()
        code = run_top(path, interval_s=0.01, frames=1, stream=out, clear=False)
        assert code == 0
        assert "tasks 1/2" in out.getvalue()

    def test_one_frame_from_a_live_server(self):
        tracker = StatusTracker()
        server = StatusServer(port=0, tracker=tracker, sse=SseSink()).start()
        try:
            out = io.StringIO()
            code = run_top(server.url, interval_s=0.01, frames=1, stream=out, clear=False)
            assert code == 0
            assert "repro top" in out.getvalue()
            assert "server up" in out.getvalue()
        finally:
            server.stop()

    def test_unreachable_source_fails_after_retries(self):
        out = io.StringIO()
        code = run_top(
            "http://127.0.0.1:9/", interval_s=0.0, frames=None, stream=out, clear=False
        )
        assert code == 1
        assert "unreachable" in out.getvalue()

    def test_source_dispatch(self, tmp_path):
        path = tmp_path / "p.jsonl"
        path.write_text("", encoding="utf-8")
        status = status_source(str(path))()  # file source: replays the JSONL
        assert status["tasks"]["total"] == 0 and status["events_seen"] == 0
