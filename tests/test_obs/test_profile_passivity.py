"""Profiling is strictly passive: campaign results are bit-identical with
the profiler on or off, sequentially and across a worker pool."""

import numpy as np

import repro.obs as obs
from repro.exec import ForwardSpec, McmcSpec, ParallelCampaignExecutor


def _comparable(result) -> dict:
    """A campaign result's full payload minus wall-clock-dependent fields."""
    payload = result.to_dict()
    payload.pop("duration_s", None)
    payload.pop("metrics", None)
    summary = dict(payload.get("summary") or {})
    summary.pop("duration_s", None)
    summary.pop("evals_per_s", None)
    payload["summary"] = summary
    return payload


class TestSequentialPassivity:
    def test_forward_campaign_bit_identical_under_profiling(self, make_injector):
        spec = ForwardSpec(p=1e-3, samples=30, chains=2)
        bare = make_injector().run(spec)
        obs.configure(profiler=True)
        profiled = make_injector().run(spec)
        assert obs.profiler().ops  # profiling actually happened
        assert _comparable(bare) == _comparable(profiled)
        assert np.array_equal(bare.chains.matrix(), profiled.chains.matrix())

    def test_mcmc_campaign_bit_identical_under_profiling(self, make_injector):
        spec = McmcSpec(p=5e-3, chains=2, steps=25)
        bare = make_injector().run(spec)
        obs.configure(profiler=True)
        profiled = make_injector().run(spec)
        assert _comparable(bare) == _comparable(profiled)
        assert np.array_equal(bare.chains.matrix(), profiled.chains.matrix())


class TestParallelPassivity:
    def test_parallel_execution_bit_identical_under_profiling(self, recipe):
        specs = [ForwardSpec(p=p, samples=20, chains=2) for p in (1e-4, 1e-3, 1e-2)]
        bare = ParallelCampaignExecutor(recipe, workers=2).run(specs)
        obs.configure(profiler=True)
        profiled = ParallelCampaignExecutor(recipe, workers=2).run(specs)
        for before, after in zip(bare, profiled):
            assert _comparable(before) == _comparable(after)
            assert np.array_equal(before.chains.matrix(), after.chains.matrix())

    def test_worker_profiles_merge_into_driver(self, recipe):
        obs.configure(profiler=True)
        executor = ParallelCampaignExecutor(recipe, workers=2)
        executor.run([ForwardSpec(p=1e-3, samples=15, chains=1)])
        profiler = obs.profiler()
        # worker-side op and phase samples arrived over the result pipe
        assert profiler.ops, "expected merged worker op counters"
        assert any(path.startswith("campaign.forward") for path in profiler.phases)
        if executor.stats.parallel:
            # journal-less run: the driver itself ran no tensor ops
            assert profiler.ops["matmul"].calls > 0
