"""Estimator telemetry: the tracker fold, stopping monitor, and surfaces.

The load-bearing properties:

* the estimates document is a pure function of the delivered outcome
  *set* — delivery order, duplicate deliveries, and journal replays
  cannot change a single bit of it;
* estimator telemetry is passive — campaigns run with a tracker attached
  are bit-identical to bare runs, sequential and pooled;
* every surface (``/estimates``, ``/metrics`` families, the ``/status``
  embed, postmortem bundles) exposes the same document.
"""

import json
import random

import numpy as np
import pytest

import repro.obs as obs
from repro.bits.fields import EXPONENT_BITS, MANTISSA_BITS, SIGN_BIT
from repro.exec import ForwardSpec, ParallelCampaignExecutor
from repro.faults import BernoulliBitFlipModel, TargetSpec
from repro.obs import MemorySink, TeeSink
from repro.obs.estimator import (
    EVENT_KIND,
    EstimatorTracker,
    StoppingMonitor,
    StoppingTarget,
    outcome_payload,
    publish_outcome,
)
from repro.obs.progress import ProgressEvent


def _event(task, trials=20, degraded=(), layer="all", bitfield="all", p=1e-3):
    return ProgressEvent(
        kind=EVENT_KIND,
        payload={
            "task": task,
            "layer": layer,
            "bitfield": bitfield,
            "p": p,
            "trials": trials,
            "degraded_trials": list(degraded),
        },
    )


class TestStoppingTarget:
    def test_valid_target_roundtrips(self):
        target = StoppingTarget(halfwidth=0.05, mass=0.9)
        assert target.to_dict() == {"halfwidth": 0.05, "mass": 0.9}

    @pytest.mark.parametrize("halfwidth", [0.0, 0.5, 1.0, -0.1])
    def test_halfwidth_outside_open_interval_rejected(self, halfwidth):
        with pytest.raises(ValueError, match="halfwidth"):
            StoppingTarget(halfwidth=halfwidth)

    @pytest.mark.parametrize("mass", [0.0, 1.0, -0.5])
    def test_mass_outside_open_interval_rejected(self, mass):
        with pytest.raises(ValueError, match="mass"):
            StoppingTarget(halfwidth=0.1, mass=mass)


class TestOutcomePayload:
    def test_payload_carries_stratum_and_trial_resolution(self, make_injector):
        spec = ForwardSpec(p=1e-2, samples=24)
        outcome = make_injector().run(spec)
        payload = outcome_payload(3, outcome, spec=spec, target=TargetSpec(include_layers=("fc1",)))
        assert payload["task"] == 3
        assert payload["layer"] == "fc1"
        assert payload["bitfield"] == "all"
        assert payload["p"] == 1e-2
        assert payload["trials"] == outcome.posterior.samples.size
        degraded = np.asarray(payload["degraded_trials"])
        expected = np.flatnonzero(outcome.posterior.samples > outcome.posterior.golden_error)
        assert np.array_equal(degraded, expected)

    def test_bitfield_label_classifies_lanes(self, make_injector):
        outcome = make_injector().run(ForwardSpec(p=1e-2, samples=8))
        spec = ForwardSpec(
            p=1e-2,
            samples=8,
            fault_model=BernoulliBitFlipModel(1e-2, bits=(SIGN_BIT, EXPONENT_BITS[0])),
        )
        payload = outcome_payload(0, outcome, spec=spec)
        assert payload["bitfield"] == "exponent+sign"
        mantissa_only = ForwardSpec(
            p=1e-2, samples=8, fault_model=BernoulliBitFlipModel(1e-2, bits=MANTISSA_BITS[:3])
        )
        assert outcome_payload(0, outcome, spec=mantissa_only)["bitfield"] == "mantissa"

    def test_tempered_tuple_unwrapped(self, make_injector):
        outcome = make_injector().run(ForwardSpec(p=1e-2, samples=8))
        direct = outcome_payload(0, outcome)
        wrapped = outcome_payload(0, (outcome, object()))
        assert wrapped == direct

    def test_publish_reaches_sink_and_tracker(self, make_injector):
        spec = ForwardSpec(p=1e-2, samples=8)
        outcome = make_injector().run(spec)
        sink = MemorySink()
        tracker = EstimatorTracker()
        obs.configure(progress=TeeSink(sink, tracker))
        publish_outcome(0, outcome, spec=spec)
        (event,) = sink.of_kind(EVENT_KIND)
        assert event.payload["trials"] == 8
        assert tracker.contributions == 1

    def test_publish_is_free_when_unobserved(self, make_injector):
        # no sink, no flight recorder: the payload is never even built
        outcome = make_injector().run(ForwardSpec(p=1e-2, samples=8))
        publish_outcome(0, outcome)  # must not raise, must not need labels


class TestTrackerFold:
    def test_non_estimate_events_ignored(self):
        tracker = EstimatorTracker()
        tracker.emit(ProgressEvent(kind="executor.task_done", payload={"task": 0}))
        assert tracker.contributions == 0

    def test_degenerate_payloads_rejected(self):
        tracker = EstimatorTracker()
        tracker.emit(ProgressEvent(kind=EVENT_KIND, payload={"trials": 5}))
        tracker.emit(ProgressEvent(kind=EVENT_KIND, payload={"task": 0, "trials": 0}))
        assert tracker.contributions == 0

    def test_duplicate_delivery_is_idempotent(self):
        tracker = EstimatorTracker()
        tracker.emit(_event(0, degraded=[1, 2]))
        before = tracker.estimates()
        tracker.emit(_event(0, degraded=[1, 2]))
        tracker.emit(_event(0, degraded=[3]))  # replay with junk: first wins
        assert tracker.contributions == 1
        assert tracker.estimates() == before

    def test_document_is_delivery_order_independent(self):
        events = [
            _event(i, trials=10 + i, degraded=range(i % 4), p=[1e-3, 1e-2][i % 2])
            for i in range(12)
        ]
        in_order = EstimatorTracker(target=StoppingTarget(0.1))
        for event in events:
            in_order.emit(event)
        shuffled = EstimatorTracker(target=StoppingTarget(0.1))
        for event in random.Random(7).sample(events, len(events)):
            shuffled.emit(event)
        assert json.dumps(in_order.estimates()) == json.dumps(shuffled.estimates())


class TestEstimatesDocument:
    def test_posterior_matches_beta_by_hand(self):
        from repro.bayes.distributions import Beta

        tracker = EstimatorTracker()
        tracker.emit(_event(0, trials=40, degraded=range(10)))
        doc = tracker.estimates()
        assert doc["tasks"] == 1 and doc["trials"] == 40 and doc["degraded"] == 10
        posterior = Beta(0.5 + 10, 0.5 + 30)  # Jeffreys prior
        (stratum,) = doc["strata"]
        assert stratum["mean"] == posterior.mean
        assert stratum["interval"] == list(posterior.interval(0.95))
        assert stratum["variance"] == posterior.variance
        assert stratum["halfwidth"] == (stratum["interval"][1] - stratum["interval"][0]) / 2

    def test_strata_keyed_by_layer_bitfield_p(self):
        tracker = EstimatorTracker()
        tracker.emit(_event(0, layer="fc1", p=1e-3))
        tracker.emit(_event(1, layer="fc1", p=1e-2))
        tracker.emit(_event(2, layer="fc2", p=1e-3))
        tracker.emit(_event(3, layer="fc1", p=1e-3))
        doc = tracker.estimates()
        keys = [(s["layer"], s["p"]) for s in doc["strata"]]
        assert keys == [("fc1", 1e-3), ("fc1", 1e-2), ("fc2", 1e-3)]
        assert [s["tasks"] for s in doc["strata"]] == [2, 1, 1]

    def test_history_is_bounded_and_monotone_in_n(self):
        tracker = EstimatorTracker()
        tracker.emit(_event(0, trials=500, degraded=range(0, 500, 7)))
        (stratum,) = tracker.estimates()["strata"]
        history = stratum["history"]
        assert len(history) <= 32
        ns = [point["n"] for point in history]
        assert ns == sorted(ns) and ns[-1] == 500
        # more trials can only tighten the interval at the far end
        assert history[-1]["halfwidth"] < history[0]["halfwidth"]

    def test_crossed_at_stamps_first_crossing_task(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.12))
        # one tiny task (wide CI), then a big one that crosses the target
        tracker.emit(_event(4, trials=5, degraded=[0]))
        tracker.emit(_event(9, trials=200, degraded=range(40)))
        (stratum,) = tracker.estimates()["strata"]
        assert stratum["converged"] is True
        assert stratum["crossed_at"] == 9

    def test_unconverged_stratum_has_no_stamp(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.01))
        tracker.emit(_event(0, trials=10, degraded=[0]))
        (stratum,) = tracker.estimates()["strata"]
        assert stratum["converged"] is False and stratum["crossed_at"] is None

    def test_campaign_crossing_is_the_last_stratum_crossing(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.12))
        tracker.emit(_event(0, trials=200, degraded=range(20), p=1e-3))
        tracker.emit(_event(5, trials=200, degraded=range(60), p=1e-2))
        doc = tracker.estimates()
        assert doc["converged"] == {"converged": 2, "total": 2, "fraction": 1.0}
        assert doc["overall"]["crossed_at"] == 5

    def test_partial_convergence_reports_fraction_without_stamp(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.12))
        tracker.emit(_event(0, trials=200, degraded=range(20), p=1e-3))
        tracker.emit(_event(1, trials=4, degraded=[0], p=1e-2))
        doc = tracker.estimates()
        assert doc["converged"]["converged"] == 1
        assert doc["converged"]["fraction"] == 0.5
        assert doc["overall"]["crossed_at"] is None

    def test_no_target_means_no_convergence_accounting(self):
        tracker = EstimatorTracker()
        tracker.emit(_event(0))
        doc = tracker.estimates()
        assert doc["target"] is None and doc["converged"] is None
        (stratum,) = doc["strata"]
        assert stratum["converged"] is None and stratum["crossed_at"] is None

    def test_document_is_json_safe(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.1))
        for i in range(5):
            tracker.emit(_event(i, trials=30, degraded=range(i)))
        json.dumps(tracker.estimates())  # no numpy scalars anywhere


class TestMetricFamilies:
    def test_families_render_to_valid_openmetrics(self):
        from repro.obs.openmetrics import parse_samples, render_openmetrics, validate_openmetrics

        tracker = EstimatorTracker(target=StoppingTarget(0.1))
        tracker.emit(_event(0, trials=200, degraded=range(20), layer="fc1", p=1e-3))
        tracker.emit(_event(1, trials=8, degraded=[0], layer="fc2", p=1e-2))
        text = render_openmetrics(None, families=tracker.metric_families())
        families = validate_openmetrics(text)
        assert families["repro_stratum_mean"] == "gauge"
        assert families["repro_stratum_ci_halfwidth"] == "gauge"
        assert families["repro_stratum_trials"] == "counter"
        assert families["repro_ci_halfwidth"] == "gauge"
        assert families["repro_strata_converged"] == "counter"
        samples = parse_samples(text)
        assert samples["repro_strata_converged_total"] == 1
        assert 'layer="fc1"' in text and 'p="0.001"' in text

    def test_empty_tracker_exports_nothing(self):
        assert EstimatorTracker().metric_families() == []

    def test_converged_counter_absent_without_target(self):
        tracker = EstimatorTracker()
        tracker.emit(_event(0))
        names = {family["name"] for family in tracker.metric_families()}
        assert "strata_converged" not in names
        assert {"stratum_mean", "stratum_ci_halfwidth", "stratum_trials", "ci_halfwidth"} <= names


class TestStoppingMonitor:
    def test_requires_an_armed_target(self):
        with pytest.raises(ValueError, match="StoppingTarget"):
            StoppingMonitor(EstimatorTracker())

    def test_report_names_crossings_and_stragglers(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.12))
        tracker.emit(_event(0, trials=200, degraded=range(20), p=1e-3))
        tracker.emit(_event(1, trials=4, degraded=[0], p=1e-2))
        lines = StoppingMonitor(tracker).report_lines()
        assert "target halfwidth 0.12" in lines[0]
        assert any("crossed at task 0" in line for line in lines)
        assert any("not yet converged" in line for line in lines)
        assert any("1/2 strata at target" in line for line in lines)

    def test_summary_carries_campaign_stamp(self):
        tracker = EstimatorTracker(target=StoppingTarget(0.12))
        tracker.emit(_event(3, trials=200, degraded=range(20)))
        summary = StoppingMonitor(tracker).summary()
        assert summary["campaign_crossed_at"] == 3
        assert summary["strata"][0]["crossed_at"] == 3


class TestInstalledTracker:
    def test_install_active_uninstall(self):
        from repro.obs import estimator as estimator_mod

        assert estimator_mod.active() is None
        tracker = estimator_mod.install()
        assert estimator_mod.active() is tracker
        estimator_mod.uninstall()
        assert estimator_mod.active() is None

    def test_flight_bundle_embeds_estimator_state(self):
        from repro.obs import estimator as estimator_mod
        from repro.obs.flight import FlightRecorder

        tracker = estimator_mod.install()
        tracker.emit(_event(0, trials=10, degraded=[2]))
        bundle = FlightRecorder().bundle("test")
        assert bundle["estimator"]["tasks"] == 1
        assert bundle["estimator"]["strata"][0]["trials"] == 10
        estimator_mod.uninstall()
        assert FlightRecorder().bundle("test")["estimator"] is None


class TestPassivityAndParity:
    def test_campaign_with_tracker_is_bit_identical(self, make_injector):
        spec = ForwardSpec(p=1e-2, samples=24)
        bare = make_injector().run(spec)
        tracker = EstimatorTracker(target=StoppingTarget(0.05))
        obs.configure(progress=tracker)
        observed = make_injector().run(spec)
        assert np.array_equal(bare.chains.matrix(), observed.chains.matrix())
        assert np.array_equal(bare.posterior.samples, observed.posterior.samples)

    def test_pooled_and_sequential_documents_are_identical(self, recipe):
        specs = [ForwardSpec(p=p, samples=16) for p in np.logspace(-4, -1, 4)]

        def run(workers):
            obs.reset()
            tracker = EstimatorTracker(target=StoppingTarget(0.2))
            obs.configure(progress=tracker)
            results = ParallelCampaignExecutor(recipe, workers=workers).run(list(specs))
            return results, tracker.estimates()

        seq_results, seq_doc = run(1)
        par_results, par_doc = run(4)
        assert json.dumps(seq_doc) == json.dumps(par_doc)
        assert seq_doc["tasks"] == len(specs)
        for seq, par in zip(seq_results, par_results):
            assert np.array_equal(seq.posterior.samples, par.posterior.samples)

    def test_journal_resume_reconstructs_the_document(self, recipe, tmp_path):
        from repro.exec import CampaignJournal

        specs = [ForwardSpec(p=p, samples=16) for p in (1e-3, 1e-2)]
        path = str(tmp_path / "journal.jsonl")

        def run():
            obs.reset()
            tracker = EstimatorTracker(target=StoppingTarget(0.2))
            obs.configure(progress=tracker)
            journal = CampaignJournal(path)
            ParallelCampaignExecutor(recipe, workers=1, journal=journal).run(list(specs))
            journal.close()
            return tracker.estimates()

        fresh = run()
        restored = run()  # second run restores every task from the journal
        assert json.dumps(restored) == json.dumps(fresh)
