"""MetricsRegistry primitives: counters, gauges, histograms, snapshot/merge."""

import math

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("evaluations")
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("evaluations").inc(-1)


class TestGauge:
    def test_starts_undefined(self):
        assert math.isnan(Gauge("accept_rate").value)

    def test_last_write_wins(self):
        gauge = Gauge("accept_rate")
        gauge.set(0.1)
        gauge.set(0.7)
        assert gauge.value == 0.7


class TestHistogram:
    def test_bounds_must_be_increasing(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("durations", bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("durations", bounds=())

    def test_observations_land_in_buckets(self):
        histogram = Histogram("durations", bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 100.0):  # one per bucket incl. overflow
            histogram.observe(value)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.min == 0.5 and histogram.max == 100.0
        assert histogram.mean == pytest.approx(105.5 / 3)

    def test_nan_observations_are_skipped(self):
        histogram = Histogram("durations")
        histogram.observe(float("nan"))
        assert histogram.count == 0
        assert math.isnan(histogram.mean)


class TestRegistry:
    def test_instruments_created_on_first_use(self):
        registry = MetricsRegistry()
        registry.inc("flips.applied", 3)
        registry.set_gauge("r_hat", 1.01)
        registry.observe("campaign.duration_s", 0.2)
        assert registry.counter("flips.applied").value == 3
        assert len(registry) == 3

    def test_snapshot_is_json_clean_and_sorted(self):
        registry = MetricsRegistry()
        registry.inc("b")
        registry.inc("a", 2)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert set(snapshot) == {"counters", "gauges", "histograms"}

    def test_merge_adds_counters_and_buckets(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        for registry in (left, right):
            registry.inc("evaluations", 10)
            registry.observe("campaign.duration_s", 0.05)
        left.merge(right.snapshot())
        assert left.counter("evaluations").value == 20
        merged = left.histogram("campaign.duration_s")
        assert merged.count == 2
        assert merged.sum == pytest.approx(0.1)

    def test_merge_gauges_last_write_wins_skipping_undefined(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.set_gauge("r_hat", 1.2)
        right.gauge("r_hat")  # stays NaN: must not clobber the defined value
        left.merge(right.snapshot())
        assert left.gauge("r_hat").value == 1.2
        right.set_gauge("r_hat", 1.05)
        left.merge(right.snapshot())
        assert left.gauge("r_hat").value == 1.05

    def test_merge_rejects_mismatched_histogram_bounds(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.observe("d", 0.5)  # DEFAULT_BUCKETS
        right.histogram("d", bounds=(1.0, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bounds"):
            left.merge(right.snapshot())

    def test_merge_none_is_a_noop(self):
        registry = MetricsRegistry()
        registry.merge(None)
        registry.merge({})
        assert len(registry) == 0

    def test_merge_roundtrips_through_snapshot(self):
        source = MetricsRegistry()
        source.inc("evaluations", 7)
        source.set_gauge("ess", 120.0)
        source.observe("campaign.duration_s", 2.0)
        target = MetricsRegistry()
        target.merge(source.snapshot())
        assert target.snapshot() == source.snapshot()

    def test_counters_view_and_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        assert registry.counters() == {"a": 1}
        registry.clear()
        assert registry.counters() == {}

    def test_default_buckets_cover_subsecond_to_minutes(self):
        assert DEFAULT_BUCKETS[0] <= 0.001 and DEFAULT_BUCKETS[-1] >= 300.0
