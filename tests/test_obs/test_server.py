"""Live telemetry server: endpoints, SSE, passivity, resume consistency.

The contract under test, in increasing order of integration:

* :func:`parse_endpoint` and the :class:`StatusTracker` fold are plain
  units;
* every endpoint serves the right payload (``/metrics`` passes the
  strict OpenMetrics validator);
* ``/metrics``, ``/status``, and ``/events`` can be polled concurrently
  *while* a parallel chaos campaign runs — and the instrumented campaign
  stays bit-identical to a bare one (observability is passive);
* after a kill-and-resume, the journal position reported by ``/status``
  is consistent with what the journal actually replayed.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.obs as obs
from repro.exec import CampaignJournal, ForwardSpec, ParallelCampaignExecutor
from repro.exec import chaos as chaos_mod
from repro.obs import MemorySink, TeeSink, flight
from repro.obs.openmetrics import parse_samples, validate_openmetrics
from repro.obs.progress import ProgressEvent
from repro.obs.server import SseSink, StatusServer, StatusTracker, parse_endpoint

P_GRID = (1e-4, 1e-3, 1e-2, 5e-2)


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers.get("Content-Type", ""), response.read().decode()


class TestParseEndpoint:
    def test_bare_port_binds_localhost(self):
        assert parse_endpoint("8080") == ("127.0.0.1", 8080)

    def test_host_and_port(self):
        assert parse_endpoint("0.0.0.0:9090") == ("0.0.0.0", 9090)

    def test_bracketed_ipv6(self):
        assert parse_endpoint("[::1]:8080") == ("::1", 8080)

    def test_port_zero_allowed(self):
        assert parse_endpoint("0") == ("127.0.0.1", 0)

    @pytest.mark.parametrize("spec", ["", "abc", "[::1]8080", "70000", "host:"])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_endpoint(spec)


class TestStatusTracker:
    def _event(self, kind, wall_time=0.0, **payload):
        return ProgressEvent(kind=kind, payload=payload, wall_time=wall_time)

    def test_lifecycle_fold(self):
        tracker = StatusTracker()
        tracker.emit(self._event("executor.start", wall_time=10.0, tasks=3, workers=2))
        tracker.emit(self._event("executor.heartbeat", wall_time=10.5, task=0, pid=7, attempt=1, elapsed_s=0.5))
        tracker.emit(self._event("executor.task_done", wall_time=11.0, task=0))
        tracker.emit(self._event("executor.retry", task=1, cause="crash", attempt=2, backoff_s=0.0))
        tracker.emit(self._event("executor.task_failed", task=1))
        status = tracker.status()
        assert status["running"] is True
        assert status["tasks"] == {
            "total": 3,
            "completed": 1,
            "failed": 1,
            "remaining": 1,
            "retries": 1,
            "retries_by_cause": {"crash": 1},
        }
        # the completed/failed tasks' heartbeats are retired
        assert status["workers"] == {}

    def test_rate_and_eta_from_the_completion_window(self):
        tracker = StatusTracker()
        tracker.emit(self._event("executor.start", tasks=10, workers=1))
        for index in range(4):  # completions at t=0,2,4,6 → 0.5 tasks/s
            tracker.emit(self._event("executor.task_done", wall_time=index * 2.0, task=index))
        status = tracker.status()
        assert status["rate_per_s"] == pytest.approx(0.5)
        assert status["eta_s"] == pytest.approx(6 / 0.5)

    def test_no_eta_before_two_completions_or_after_completion(self):
        tracker = StatusTracker()
        tracker.emit(self._event("executor.start", tasks=2, workers=1))
        tracker.emit(self._event("executor.task_done", wall_time=1.0, task=0))
        assert tracker.status()["eta_s"] is None
        tracker.emit(self._event("executor.task_done", wall_time=2.0, task=1))
        tracker.emit(self._event("executor.complete", tasks=2, duration_s=2.0))
        status = tracker.status()
        assert status["running"] is False and status["eta_s"] is None
        assert status["last_complete"]["tasks"] == 2

    def test_journal_and_chaos_fold(self):
        tracker = StatusTracker()
        tracker.emit(self._event("journal.replayed", records=5, quarantined=1, path="j"))
        tracker.emit(self._event("journal.append", key="k", records=6))
        tracker.emit(self._event("journal.quarantined", lines=2, path="j"))
        tracker.emit(self._event("chaos.fired", site="pipe.drop"))
        status = tracker.status()
        assert status["journal"] == {"records": 6, "quarantined": 2}
        assert status["chaos_fired"] == {"pipe.drop": 1}


class TestSseSink:
    def test_delivery_and_bounded_drop(self):
        sink = SseSink(max_queue=2)
        client = sink.subscribe()
        for index in range(4):
            sink.emit(ProgressEvent(kind="tick", payload={"n": index}))
        assert sink.delivered == 2 and sink.dropped == 2
        assert json.loads(client.get_nowait())["n"] == 0
        sink.unsubscribe(client)
        assert sink.subscribers == 0

    def test_close_sends_the_sentinel(self):
        sink = SseSink()
        client = sink.subscribe()
        sink.close()
        assert client.get_nowait() is None
        # subscribing after close yields an immediately-terminated stream
        assert sink.subscribe().get_nowait() is None


class TestEndpoints:
    @pytest.fixture()
    def server(self):
        tracker = StatusTracker()
        sse = SseSink()
        with StatusServer(port=0, tracker=tracker, sse=sse, labels={"pid": "1"}) as server:
            yield server

    def test_healthz(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200 and body == "ok\n"

    def test_metrics_is_validator_clean_openmetrics(self, server):
        obs.configure(metrics=True)
        obs.metrics().inc("evaluations", 3)
        status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("application/openmetrics-text")
        validate_openmetrics(body)
        assert parse_samples(body)["repro_evaluations_total"] == 3

    def test_metrics_without_registry_is_empty_but_valid(self, server):
        _, _, body = _get(server.url + "/metrics")
        assert validate_openmetrics(body) == {}

    def test_status_document(self, server):
        server.tracker.emit(
            ProgressEvent(kind="executor.start", payload={"tasks": 2, "workers": 1})
        )
        status, content_type, body = _get(server.url + "/status")
        assert status == 200 and content_type.startswith("application/json")
        document = json.loads(body)
        assert document["tasks"]["total"] == 2
        assert document["server"]["url"] == server.url
        assert document["server"]["uptime_s"] >= 0

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404

    def test_index_lists_endpoints(self, server):
        _, _, body = _get(server.url)
        assert set(json.loads(body)["endpoints"]) == {
            "/metrics", "/status", "/estimates", "/events", "/healthz",
        }

    def test_estimates_without_estimator_is_503(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/estimates")
        assert excinfo.value.code == 503
        assert "no estimator" in excinfo.value.read().decode("utf-8")

    def test_estimates_and_status_expose_the_tracker_document(self):
        from repro.obs.estimator import EstimatorTracker, StoppingTarget

        estimator = EstimatorTracker(target=StoppingTarget(0.1))
        estimator.emit(
            ProgressEvent(
                kind="estimate",
                payload={
                    "task": 0, "layer": "fc1", "bitfield": "all", "p": 1e-2,
                    "trials": 40, "degraded_trials": [1, 5],
                },
            )
        )
        with StatusServer(port=0, tracker=StatusTracker(), estimator=estimator) as server:
            status, content_type, body = _get(server.url + "/estimates")
            assert status == 200 and content_type.startswith("application/json")
            document = json.loads(body)
            assert document["schema_version"] >= 1  # artifact-stamped
            assert document["tasks"] == 1
            assert document["strata"][0]["layer"] == "fc1"
            # /status embeds the same document, so `repro top` renders it
            # identically from a URL or a JSONL replay
            _, _, status_body = _get(server.url + "/status")
            embedded = json.loads(status_body)["estimator"]
            assert embedded == estimator.estimates()
            # /metrics carries the per-stratum families, validator-clean
            _, _, metrics_body = _get(server.url + "/metrics")
            families = validate_openmetrics(metrics_body)
            assert families["repro_stratum_ci_halfwidth"] == "gauge"
            assert families["repro_strata_converged"] == "counter"
            assert 'layer="fc1"' in metrics_body

    def test_events_streams_published_frames(self, server):
        frames = []
        ready = threading.Event()

        def consume():
            with urllib.request.urlopen(server.url + "/events", timeout=5.0) as response:
                ready.set()
                for raw in response:
                    line = raw.decode("utf-8").strip()
                    if line.startswith("data: "):
                        frames.append(json.loads(line[len("data: "):]))
                        if len(frames) == 2:
                            break

        reader = threading.Thread(target=consume, daemon=True)
        reader.start()
        assert ready.wait(5.0)
        # wait for the subscription to land before publishing
        for _ in range(100):
            if server.sse.subscribers:
                break
            time.sleep(0.01)
        server.sse.emit(ProgressEvent(kind="a", payload={"n": 1}))
        server.sse.emit(ProgressEvent(kind="b", payload={"n": 2}))
        reader.join(timeout=5.0)
        assert [frame["kind"] for frame in frames] == ["a", "b"]

    def test_stop_is_idempotent_and_unblocks_sse(self, server):
        client = server.sse.subscribe()
        server.stop()
        assert client.get(timeout=1.0) is None
        server.stop()  # second stop is a no-op


class TestLiveCampaign:
    """Poll every endpoint concurrently during a real parallel chaos run."""

    def test_concurrent_polling_during_chaos_campaign(self, recipe, tmp_path):
        tracker = StatusTracker()
        sse = SseSink()
        sink = MemorySink()
        obs.configure(metrics=True, progress=TeeSink(sink, tracker, sse))
        # one guaranteed pipe.drop: a chaos retry fires, the run completes
        plan = chaos_mod.ChaosPlan.from_rates(
            {"pipe.drop": chaos_mod.ChaosRule(rate=1.0, count=1)}, seed=0
        )
        journal = CampaignJournal(str(tmp_path / "live.journal.jsonl"))
        executor = ParallelCampaignExecutor(
            recipe,
            workers=2,
            journal=journal,
            max_attempts=3,
            backoff_s=0.001,
            chaos=plan,
            start_method="fork",
        )

        stop = threading.Event()
        polled = {"metrics": [], "status": []}
        errors = []

        def poll():
            while not stop.is_set():
                try:
                    _, _, metrics_body = _get(server.url + "/metrics")
                    validate_openmetrics(metrics_body)
                    polled["metrics"].append(metrics_body)
                    _, _, status_body = _get(server.url + "/status")
                    polled["status"].append(json.loads(status_body))
                except Exception as exc:  # noqa: BLE001 — collected for the assertion
                    errors.append(exc)
                stop.wait(0.02)

        sse_frames = []

        def consume_events():
            try:
                with urllib.request.urlopen(server.url + "/events", timeout=10.0) as response:
                    for raw in response:
                        line = raw.decode("utf-8").strip()
                        if line.startswith("data: "):
                            sse_frames.append(json.loads(line[len("data: "):]))
            except OSError:
                pass  # server shut down mid-read; frames so far still count

        with StatusServer(port=0, tracker=tracker, sse=sse) as server:
            poller = threading.Thread(target=poll, daemon=True)
            consumer = threading.Thread(target=consume_events, daemon=True)
            poller.start()
            consumer.start()
            results = executor.run([ForwardSpec(p=p, samples=8) for p in P_GRID])
            # one more poll cycle sees the completed state
            stop.wait(0.1)
            stop.set()
            poller.join(timeout=5.0)
            final = json.loads(_get(server.url + "/status")[2])
        consumer.join(timeout=5.0)
        journal.close()

        assert not errors
        assert all(result is not None for result in results)
        assert polled["metrics"] and polled["status"]
        assert final["running"] is False
        assert final["tasks"]["completed"] == len(P_GRID)
        assert final["journal"]["records"] == len(P_GRID)
        assert final["last_complete"]["tasks"] == len(P_GRID)
        kinds = {frame["kind"] for frame in sse_frames}
        assert "executor.task_done" in kinds
        # the tee delivered the same stream everywhere
        assert len(sink.of_kind("executor.task_done")) == len(P_GRID)

    def test_full_instrumentation_is_bit_identical(self, recipe):
        specs = [ForwardSpec(p=p, samples=8) for p in P_GRID[:2]]

        obs.reset()
        bare = ParallelCampaignExecutor(recipe, workers=2).run(list(specs))

        from repro.obs import estimator as estimator_mod

        obs.reset()
        tracker = StatusTracker()
        sse = SseSink()
        estimator = estimator_mod.install(
            estimator_mod.EstimatorTracker(target=estimator_mod.StoppingTarget(0.1))
        )
        obs.configure(metrics=True, tracer=True, progress=TeeSink(tracker, sse, estimator))
        recorder = flight.install(flight.FlightRecorder())
        try:
            with StatusServer(port=0, tracker=tracker, sse=sse, estimator=estimator) as server:
                instrumented = ParallelCampaignExecutor(recipe, workers=2).run(list(specs))
                _get(server.url + "/metrics")
                _get(server.url + "/status")
                _get(server.url + "/estimates")
        finally:
            flight.uninstall()
            estimator_mod.uninstall()

        assert recorder.recorded > 0  # the instruments really were live
        assert estimator.contributions == len(specs)
        for bare_result, instrumented_result in zip(bare, instrumented):
            assert np.array_equal(
                bare_result.chains.matrix(), instrumented_result.chains.matrix()
            )
            assert np.array_equal(
                bare_result.posterior.samples, instrumented_result.posterior.samples
            )


class TestResumeConsistency:
    """A killed-and-resumed campaign reports a consistent journal position."""

    def test_status_journal_position_survives_resume(self, recipe, tmp_path):
        path = str(tmp_path / "resume.journal.jsonl")
        specs = [ForwardSpec(p=p, samples=8) for p in P_GRID]

        # first life: a chaos run (worker SIGKILLed mid-run) that completes
        # with every record journaled; the seed is searched so at least one
        # task is killed on attempt 1 but none is poisoned to exhaustion
        def fires(seed, task, attempt):
            return chaos_mod.chaos_uniform(seed, "worker.sigkill", (task, attempt)) < 0.5

        seed = next(
            s
            for s in range(1000)
            if any(fires(s, t, 1) for t in range(len(specs)))
            and not any(all(fires(s, t, a) for a in (1, 2, 3)) for t in range(len(specs)))
        )
        plan = chaos_mod.ChaosPlan.from_rates({"worker.sigkill": 0.5}, seed=seed)
        first_tracker = StatusTracker()
        obs.configure(progress=first_tracker)
        journal = CampaignJournal(path)
        first = ParallelCampaignExecutor(
            recipe,
            workers=2,
            journal=journal,
            max_attempts=3,
            backoff_s=0.001,
            chaos=plan,
            start_method="fork",
        )
        first.run(list(specs))
        assert first.stats.crashes >= 1  # the kill really happened
        journal.close()
        first_status = first_tracker.status()
        assert first_status["journal"]["records"] == len(specs)

        # second life: a fresh process state (new tracker) resumes the
        # journal; the replay event alone restores the journal position
        obs.reset()
        second_tracker = StatusTracker()
        obs.configure(progress=second_tracker)
        resumed = CampaignJournal.resume(path)
        assert second_tracker.status()["journal"]["records"] == len(specs)

        # re-running the same specs is pure journal hits: no task re-runs,
        # and /status still reports the same position
        executor = ParallelCampaignExecutor(recipe, workers=2, journal=resumed)
        results = executor.run(list(specs))
        resumed.close()
        assert executor.stats.journal_hits == len(specs)
        assert all(result is not None for result in results)
        final = second_tracker.status()
        assert final["journal"]["records"] == len(specs)
        assert final["tasks"]["completed"] == 0  # nothing re-ran
        assert final["running"] is False
