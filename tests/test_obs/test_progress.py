"""Progress events and sinks: envelope integrity, delivery, containment."""

import io
import json

import repro.obs as obs
from repro.obs import JsonlSink, MemorySink, ProgressEvent, ProgressSink, StderrSink, TeeSink


class TestProgressEvent:
    def test_to_dict_carries_envelope_and_payload(self):
        event = ProgressEvent(kind="sweep.point", payload={"p": 1e-3, "mean": 0.2})
        record = event.to_dict()
        assert record["kind"] == "sweep.point"
        assert record["p"] == 1e-3
        assert record["pid"] > 0 and record["wall_time"] > 0

    def test_payload_cannot_clobber_the_envelope(self):
        event = ProgressEvent(kind="executor.task_done", payload={"kind": "forward"})
        assert event.to_dict()["kind"] == "executor.task_done"

    def test_nonfinite_payload_values_sanitised(self):
        record = ProgressEvent(kind="x", payload={"r_hat": float("nan")}).to_dict()
        assert record["r_hat"] is None

    def test_render_is_one_line(self):
        event = ProgressEvent(kind="adaptive.progress", payload={"p": 0.01, "steps": 50})
        line = event.render()
        assert line.startswith("[adaptive.progress]")
        assert "steps=50" in line and "\n" not in line


class TestSinks:
    def test_memory_sink_collects_and_filters(self):
        sink = MemorySink()
        sink.publish(ProgressEvent(kind="a"))
        sink.publish(ProgressEvent(kind="b"))
        assert len(sink.events) == 2
        assert [e.kind for e in sink.of_kind("a")] == ["a"]

    def test_jsonl_sink_writes_one_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        sink.publish(ProgressEvent(kind="sweep.point", payload={"p": 1e-3}))
        sink.publish(ProgressEvent(kind="sweep.point", payload={"p": 1e-2}))
        sink.close()
        with open(path, encoding="utf-8") as handle:
            records = [json.loads(line) for line in handle]
        # a fresh file opens with a one-line version header, then events
        assert records[0]["kind"] == "progress.header"
        assert records[0]["schema_version"] >= 1
        assert [r["p"] for r in records[1:]] == [1e-3, 1e-2]

    def test_jsonl_sink_appends_without_second_header(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        first = JsonlSink(path)
        first.publish(ProgressEvent(kind="a"))
        first.close()
        second = JsonlSink(path)
        second.publish(ProgressEvent(kind="b"))
        second.close()
        with open(path, encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert kinds == ["progress.header", "a", "b"]

    def test_stderr_sink_renders_to_stream(self):
        stream = io.StringIO()
        StderrSink(stream=stream).publish(ProgressEvent(kind="x", payload={"n": 1}))
        assert stream.getvalue() == "[x] n=1\n"

    def test_tee_fans_out_and_closes_children(self, tmp_path):
        memory = MemorySink()
        jsonl = JsonlSink(str(tmp_path / "e.jsonl"))
        tee = TeeSink(memory, jsonl)
        tee.publish(ProgressEvent(kind="x"))
        tee.close()
        assert len(memory.events) == 1
        assert jsonl._handle.closed

    def test_failing_sink_is_contained(self):
        class Doomed(ProgressSink):
            def emit(self, event):
                raise OSError("disk gone")

        Doomed().publish(ProgressEvent(kind="x"))  # must not raise


class TestPublish:
    def test_publish_without_sink_is_dropped(self):
        obs.publish("x", n=1)  # no sink attached: silently a no-op

    def test_publish_reaches_the_attached_sink(self):
        sink = MemorySink()
        obs.configure(progress=sink)
        obs.publish("executor.heartbeat", task=0, elapsed_s=1.5)
        (event,) = sink.events
        assert event.kind == "executor.heartbeat"
        assert event.payload == {"task": 0, "elapsed_s": 1.5}

    def test_publish_accepts_kind_as_payload_key(self):
        sink = MemorySink()
        obs.configure(progress=sink)
        obs.publish("executor.task_done", kind="forward")  # positional-only `kind`
        assert sink.events[0].to_dict()["kind"] == "executor.task_done"
