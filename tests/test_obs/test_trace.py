"""Tracer: span recording, nesting, Chrome-trace export, worker merge."""

import json
import os
import threading

from repro.obs import Tracer


class TestRecording:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("campaign.forward", p=1e-3):
            tracer.instant("checkpoint")
        assert len(tracer) == 0

    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("campaign.forward", category="campaign", p=1e-3):
            pass
        (event,) = tracer.events
        assert event["name"] == "campaign.forward"
        assert event["cat"] == "campaign"
        assert event["ph"] == "X"
        assert event["dur"] >= 0.0
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["args"] == {"p": 1e-3}

    def test_span_args_are_json_safe(self):
        tracer = Tracer()
        with tracer.span("x", spec=object(), n=3, label=None):
            pass
        args = tracer.events[0]["args"]
        assert isinstance(args["spec"], str)  # repr'd, not a live object
        assert args["n"] == 3 and args["label"] is None

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events  # inner closes (and records) first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_span_recorded_even_when_body_raises(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(tracer) == 1

    def test_instant_event(self):
        tracer = Tracer()
        tracer.instant("journal.hit", key="abc")
        (event,) = tracer.events
        assert event["ph"] == "i" and event["s"] == "t"


class TestReduction:
    def test_drain_empties_the_tracer(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        events = tracer.drain()
        assert len(events) == 1 and len(tracer) == 0

    def test_merge_folds_worker_events_in(self):
        driver, worker = Tracer(), Tracer()
        with worker.span("worker.task"):
            pass
        driver.merge(worker.drain())
        driver.merge(None)  # tolerated
        assert [e["name"] for e in driver.events] == ["worker.task"]


class TestExport:
    def test_export_is_chrome_trace_shaped_and_time_sorted(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        exported = tracer.export()
        names = [e["name"] for e in exported["traceEvents"]]
        assert names == ["outer", "inner"]  # sorted by ts, not close order
        assert exported["displayTimeUnit"] == "ms"

    def test_save_writes_plain_loadable_json(self, tmp_path):
        tracer = Tracer()
        with tracer.span("campaign.forward", p=float("nan")):
            pass
        path = str(tmp_path / "trace.json")
        tracer.save(path)
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        # Perfetto compatibility: no checksum wrapper, NaN args sanitised
        assert "__checksum__" not in payload
        assert "traceEvents" in payload
        assert payload["traceEvents"][0]["args"]["p"] is None
