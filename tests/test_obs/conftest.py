"""Shared fixtures for the observability tests.

Observability state is process-global, so every test runs between
``obs.reset()`` calls (and with the library verbosity restored) to keep
instruments from leaking across tests.
"""

import functools

import pytest

import repro.obs as obs
from repro.obs import estimator as estimator_mod
from repro.core import BayesianFaultInjector
from repro.exec import InjectorRecipe
from repro.faults import TargetSpec
from repro.nn import paper_mlp
from repro.utils.logging import get_verbosity, set_verbosity


@pytest.fixture(autouse=True)
def clean_obs():
    verbosity = get_verbosity()
    obs.reset()
    estimator_mod.uninstall()
    yield
    obs.reset()
    estimator_mod.uninstall()
    set_verbosity(verbosity)


@pytest.fixture()
def make_injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval

    def make():
        return BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=7
        )

    return make


@pytest.fixture()
def recipe(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return InjectorRecipe.from_model(
        trained_mlp,
        eval_x,
        eval_y,
        spec=TargetSpec.weights_and_biases(),
        seed=7,
        model_builder=functools.partial(paper_mlp, rng=0),
    )
