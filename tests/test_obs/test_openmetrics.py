"""OpenMetrics exporter: rendering, strict validation, sample parsing.

The exporter and the validator are developed against each other: every
rendered payload must pass the strict validator, and the validator must
reject the classic exposition-format mistakes (missing # EOF, undeclared
families, non-cumulative buckets) so drift fails loudly in CI.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs.openmetrics import (
    OpenMetricsError,
    escape_label_value,
    metric_name,
    parse_samples,
    render_openmetrics,
    validate_openmetrics,
)


class TestMetricName:
    def test_dots_become_underscores_with_prefix(self):
        assert metric_name("executor.retries.crash") == "repro_executor_retries_crash"

    def test_illegal_characters_sanitised(self):
        assert metric_name("flips.layer.fc1/weight") == "repro_flips_layer_fc1_weight"

    def test_leading_digit_guarded(self):
        assert metric_name("3sigma") == "repro__3sigma"

    def test_label_value_escaping(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


class TestRender:
    def test_empty_snapshot_is_valid_exposition(self):
        text = render_openmetrics(None)
        assert text == "# EOF\n"
        assert validate_openmetrics(text) == {}

    def test_counters_gain_total_suffix(self):
        text = render_openmetrics({"counters": {"evaluations": 42}})
        assert "# TYPE repro_evaluations counter" in text
        assert "repro_evaluations_total 42" in text
        validate_openmetrics(text)

    def test_nan_gauges_are_skipped(self):
        text = render_openmetrics(
            {"gauges": {"written": 1.5, "never_written": float("nan")}}
        )
        assert "repro_written 1.5" in text
        assert "never_written" not in text
        validate_openmetrics(text)

    def test_histogram_buckets_are_cumulative_with_inf(self):
        snapshot = {
            "histograms": {
                "campaign.duration_s": {
                    "bounds": [0.1, 1.0],
                    "counts": [2, 3, 1],  # per-bucket, overflow last
                    "sum": 4.5,
                    "count": 6,
                }
            }
        }
        text = render_openmetrics(snapshot)
        samples = parse_samples(text)
        assert samples['repro_campaign_duration_s_bucket{le="0.1"}'] == 2
        assert samples['repro_campaign_duration_s_bucket{le="1"}'] == 5
        assert samples['repro_campaign_duration_s_bucket{le="+Inf"}'] == 6
        assert samples["repro_campaign_duration_s_count"] == 6
        assert samples["repro_campaign_duration_s_sum"] == 4.5
        validate_openmetrics(text)

    def test_labels_attached_to_every_sample(self):
        text = render_openmetrics(
            {"counters": {"a": 1}, "gauges": {"b": 2.0}}, labels={"pid": "99"}
        )
        assert 'repro_a_total{pid="99"} 1' in text
        assert 'repro_b{pid="99"} 2' in text
        validate_openmetrics(text)

    def test_live_registry_snapshot_renders_clean(self):
        obs.configure(metrics=True)
        registry = obs.metrics()
        registry.inc("evaluations", 10)
        registry.set_gauge("executor.worst_heartbeat_gap_s", 0.25)
        registry.observe("campaign.duration_s", 0.5)
        registry.observe("campaign.duration_s", 2.0)
        text = render_openmetrics(registry.snapshot(), labels={"pid": "1"})
        families = validate_openmetrics(text)
        assert families["repro_evaluations"] == "counter"
        assert families["repro_campaign_duration_s"] == "histogram"

    def test_illegal_label_name_rejected_at_render(self):
        with pytest.raises(OpenMetricsError, match="illegal label name"):
            render_openmetrics({"counters": {"a": 1}}, labels={"bad-name": "x"})


class TestValidate:
    def test_missing_eof_rejected(self):
        with pytest.raises(OpenMetricsError, match="EOF"):
            validate_openmetrics("# TYPE repro_a counter\nrepro_a_total 1\n")

    def test_missing_trailing_newline_rejected(self):
        with pytest.raises(OpenMetricsError, match="newline"):
            validate_openmetrics("# EOF")

    def test_eof_mid_payload_rejected(self):
        with pytest.raises(OpenMetricsError, match="before the end"):
            validate_openmetrics("# EOF\n# TYPE repro_a counter\n# EOF\n")

    def test_sample_without_type_declaration_rejected(self):
        with pytest.raises(OpenMetricsError, match="no TYPE declaration"):
            validate_openmetrics("repro_a_total 1\n# EOF\n")

    def test_family_declared_twice_rejected(self):
        text = "# TYPE repro_a counter\n# TYPE repro_a counter\n# EOF\n"
        with pytest.raises(OpenMetricsError, match="declared twice"):
            validate_openmetrics(text)

    def test_counter_sample_must_end_in_total(self):
        text = "# TYPE repro_a counter\nrepro_a 1\n# EOF\n"
        with pytest.raises(OpenMetricsError, match="_total"):
            validate_openmetrics(text)

    def test_negative_counter_rejected(self):
        text = "# TYPE repro_a counter\nrepro_a_total -1\n# EOF\n"
        with pytest.raises(OpenMetricsError, match="negative"):
            validate_openmetrics(text)

    def test_non_cumulative_buckets_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="0.1"} 5\n'
            'repro_h_bucket{le="1"} 3\n'
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsError, match="cumulative"):
            validate_openmetrics(text)

    def test_inf_bucket_must_match_count(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 4\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsError, match="!= _count"):
            validate_openmetrics(text)

    def test_histogram_without_inf_bucket_rejected(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 3\n'
            "repro_h_sum 1\n"
            "repro_h_count 3\n"
            "# EOF\n"
        )
        with pytest.raises(OpenMetricsError, match=r"\+Inf"):
            validate_openmetrics(text)

    def test_malformed_sample_line_rejected(self):
        with pytest.raises(OpenMetricsError, match="malformed sample"):
            validate_openmetrics("# TYPE repro_a gauge\nrepro_a one two three\n# EOF\n")

    def test_help_comments_accepted(self):
        text = "# HELP repro_a whatever\n# TYPE repro_a gauge\nrepro_a 1\n# EOF\n"
        assert validate_openmetrics(text) == {"repro_a": "gauge"}


class TestParseSamples:
    def test_inf_values_roundtrip(self):
        samples = parse_samples('# TYPE repro_h histogram\nrepro_h_bucket{le="+Inf"} 2\n# EOF\n')
        assert samples == {'repro_h_bucket{le="+Inf"}': 2.0}

    def test_infinite_sample_value(self):
        assert parse_samples("repro_g +Inf\n")["repro_g"] == math.inf


class TestExtraFamilies:
    """The ``families`` hook: per-sample-labelled gauges and counters."""

    def test_families_render_with_per_sample_labels(self):
        text = render_openmetrics(
            {"counters": {"evaluations": 3}},
            labels={"pid": "9"},
            families=[
                {
                    "name": "stratum_mean",
                    "type": "gauge",
                    "samples": [({"layer": "fc1"}, 0.25), ({"layer": "fc2"}, 0.5)],
                },
                {"name": "strata_converged", "type": "counter", "samples": [({}, 2)]},
            ],
        )
        families = validate_openmetrics(text)
        assert families["repro_stratum_mean"] == "gauge"
        assert families["repro_strata_converged"] == "counter"
        samples = parse_samples(text)
        assert samples["repro_strata_converged_total"] == 2
        # shared labels merge under the per-sample ones
        assert 'repro_stratum_mean{layer="fc1",pid="9"} 0.25' in text

    def test_family_collision_with_snapshot_rejected(self):
        with pytest.raises(OpenMetricsError, match="collides"):
            render_openmetrics(
                {"gauges": {"x": 1.0}},
                families=[{"name": "x", "type": "gauge", "samples": [({}, 2.0)]}],
            )

    def test_unsupported_family_type_rejected(self):
        with pytest.raises(OpenMetricsError, match="unsupported type"):
            render_openmetrics(
                None, families=[{"name": "h", "type": "histogram", "samples": []}]
            )

    @pytest.mark.parametrize("value", [math.nan, math.inf, -math.inf])
    def test_non_finite_gauge_samples_survive_per_spec(self, value):
        # gauges may legally carry NaN/±Inf; the exposition must still
        # validate and the value must parse back to the same float
        text = render_openmetrics(
            None, families=[{"name": "g", "type": "gauge", "samples": [({}, value)]}]
        )
        validate_openmetrics(text)
        parsed = parse_samples(text)["repro_g"]
        assert parsed == value or (math.isnan(parsed) and math.isnan(value))


class TestAdversarialLabels:
    """Property: any label value renders to a payload the strict validator
    accepts — quotes, backslashes, newlines, braces, and commas are all
    legal inside a quoted label value once escaped."""

    @given(value=st.text(max_size=40), shared=st.text(max_size=10))
    @settings(max_examples=200, deadline=None)
    def test_render_validate_roundtrip(self, value, shared):
        text = render_openmetrics(
            {"counters": {"n": 1}},
            labels={"pid": shared},
            families=[
                {"name": "g", "type": "gauge", "samples": [({"layer": value}, 0.5)]}
            ],
        )
        families = validate_openmetrics(text)
        assert families == {"repro_n": "counter", "repro_g": "gauge"}

    @pytest.mark.parametrize(
        "value", ['a"b', "back\\slash", "new\nline", "a,b", '{x="y"}', ",,,", 'le="0.1"', ""]
    )
    def test_known_nasty_values_validate(self, value):
        text = render_openmetrics(
            None, families=[{"name": "g", "type": "gauge", "samples": [({"layer": value}, 1.0)]}]
        )
        validate_openmetrics(text)

    @given(value=st.text(max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_escaping_is_reversible(self, value):
        import re

        escaped = escape_label_value(value)
        unescaped = re.sub(
            r"\\(.)", lambda m: "\n" if m.group(1) == "n" else m.group(1), escaped
        )
        assert unescaped == value
