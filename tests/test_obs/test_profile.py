"""The profiling layer: clocks, per-op/per-layer/per-phase accounting,
reduction, reporting, and strict passivity."""

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    Profiler,
    clock_ns,
    clock_s,
    profile_module,
    wall_display,
)
from repro.nn import paper_mlp
from repro.tensor import Tensor


class TestClock:
    def test_clock_is_monotonic_nondecreasing(self):
        a = clock_s()
        b = clock_s()
        assert b >= a

    def test_clock_ns_is_integer_nanoseconds(self):
        a = clock_ns()
        b = clock_ns()
        assert isinstance(a, int) and b >= a

    def test_wall_display_is_iso8601_utc(self):
        stamp = wall_display()
        assert stamp.endswith("Z") and stamp[4] == "-" and "T" in stamp

    def test_timer_shim_uses_canonical_clock(self, monkeypatch):
        # utils.timing.Timer must delegate to the profiler clock: patch the
        # shared clock and the Timer must see the patched readings.
        import repro.utils.timing as timing

        readings = iter([10.0, 13.5])
        monkeypatch.setattr(timing, "clock_s", lambda: next(readings))
        with timing.Timer() as timer:
            pass
        assert timer.elapsed == pytest.approx(3.5)

    def test_no_wall_clock_durations_in_duration_modules(self):
        # Convention check: duration-measuring modules must go through
        # clock_s/clock_ns (obs.profile owns the only perf_counter calls);
        # time.time is reserved for display metadata.
        import inspect

        import repro.exec.executor as executor
        import repro.obs.trace as trace
        import repro.utils.timing as timing

        for module in (executor, trace, timing):
            source = inspect.getsource(module)
            assert "time.time(" not in source, module.__name__
            assert "time.perf_counter(" not in source, module.__name__
            assert "time.monotonic(" not in source, module.__name__


class TestOpRecording:
    def test_ops_counted_with_flops_and_bytes(self):
        profiler = Profiler()
        obs.configure(profiler=profiler)
        a = Tensor(np.ones((4, 8), dtype=np.float32))
        b = Tensor(np.ones((8, 3), dtype=np.float32))
        out = a @ b
        stats = profiler.ops["matmul"]
        assert stats.calls == 1
        assert stats.flops == pytest.approx(2.0 * out.data.size * 8)
        assert stats.bytes == out.data.nbytes

    def test_explicit_flops_hint_wins(self):
        profiler = Profiler()
        out = np.zeros((2, 2), dtype=np.float32)
        profiler.record_tensor_op("conv2d", out, (), flops=123.0)
        assert profiler.ops["conv2d"].flops == 123.0

    def test_conv2d_exact_flops(self):
        from repro.tensor import conv2d, no_grad

        profiler = Profiler()
        obs.configure(profiler=profiler)
        x = Tensor(np.ones((1, 3, 5, 5), dtype=np.float32))
        w = Tensor(np.ones((4, 3, 3, 3), dtype=np.float32))
        with no_grad():
            out = conv2d(x, w, stride=1, padding=1)
        assert profiler.ops["conv2d"].flops == pytest.approx(2.0 * out.data.size * 3 * 3 * 3)

    def test_self_time_estimator_resets_at_boundaries(self):
        profiler = Profiler()
        out = np.zeros(4, dtype=np.float32)
        profiler.record_tensor_op("relu", out, ())
        assert profiler.ops["relu"].self_s_est == 0.0  # first op: no delta
        profiler.record_tensor_op("relu", out, ())
        assert profiler.ops["relu"].self_s_est > 0.0
        profiler.reset_op_clock()
        before = profiler.ops["relu"].self_s_est
        profiler.record_tensor_op("relu", out, ())  # first after reset: no delta
        assert profiler.ops["relu"].self_s_est == before

    def test_no_profiler_attached_records_nothing(self):
        assert obs.profiler() is None
        a = Tensor(np.ones((2, 2), dtype=np.float32))
        _ = a + a  # must not raise, must not record anywhere


class TestLayerTiming:
    def test_profile_module_records_layer_hierarchy(self):
        profiler = Profiler()
        obs.configure(profiler=profiler)
        model = paper_mlp(rng=0).eval()
        x = Tensor(np.zeros((5, 2), dtype=np.float32))
        with profile_module(model, profiler):
            model(x)
        names = set(profiler.layers)
        assert "layers.0" in names and "layers" in names
        outer = profiler.layers["layers"]
        assert outer.calls == 1
        assert outer.forward_cum_s >= outer.forward_self_s >= 0.0
        # container cumulative time includes its children
        assert outer.forward_cum_s >= profiler.layers["layers.0"].forward_cum_s

    def test_hooks_removed_after_context(self):
        profiler = Profiler()
        obs.configure(profiler=profiler)
        model = paper_mlp(rng=0).eval()
        x = Tensor(np.zeros((3, 2), dtype=np.float32))
        with profile_module(model, profiler):
            model(x)
        calls_inside = profiler.layers["layers.0"].calls
        model(x)  # outside: no hooks, no new samples
        assert profiler.layers["layers.0"].calls == calls_inside
        assert all(not m._forward_hooks and not m._forward_pre_hooks
                   for _, m in model.named_modules())

    def test_hooks_removed_on_exception(self):
        profiler = Profiler()
        model = paper_mlp(rng=0).eval()
        with pytest.raises(RuntimeError):
            with profile_module(model, profiler):
                raise RuntimeError("boom")
        assert all(not m._forward_hooks and not m._forward_pre_hooks
                   for _, m in model.named_modules())

    def test_backward_billed_to_live_layer(self):
        profiler = Profiler()
        obs.configure(profiler=profiler)
        model = paper_mlp(rng=0)
        model.train()
        x = Tensor(np.random.default_rng(0).normal(size=(6, 2)).astype(np.float32))
        with profile_module(model, profiler):
            out = model(x)
        out.sum().backward()
        billed = sum(stats.backward_self_s for stats in profiler.layers.values())
        assert billed > 0.0


class TestPhases:
    def test_nested_phases_form_dotted_paths(self):
        profiler = Profiler()
        with profiler.phase("campaign.forward"):
            with profiler.phase("flip.apply"):
                pass
            with profiler.phase("forward.eval"):
                pass
        assert set(profiler.phases) == {
            "campaign.forward",
            "campaign.forward/flip.apply",
            "campaign.forward/forward.eval",
        }
        outer = profiler.phases["campaign.forward"]
        children = (
            profiler.phases["campaign.forward/flip.apply"].cum_s
            + profiler.phases["campaign.forward/forward.eval"].cum_s
        )
        assert outer.cum_s >= children
        assert outer.self_s == pytest.approx(outer.cum_s - children, abs=1e-6)

    def test_obs_phase_is_noop_when_detached(self):
        assert obs.profiler() is None
        with obs.phase("anything"):
            pass  # must not raise, must not create a profiler

    def test_disabled_profiler_phase_records_nothing(self):
        profiler = Profiler(enabled=False)
        with profiler.phase("x"):
            pass
        assert not profiler.phases


class TestReduction:
    def _populated(self) -> Profiler:
        profiler = Profiler()
        out = np.zeros((3, 3), dtype=np.float32)
        profiler.record_tensor_op("matmul", out, (), flops=54.0)
        profiler._layer_enter("layers.0")
        profiler._layer_exit("layers.0")
        with profiler.phase("campaign"):
            pass
        return profiler

    def test_snapshot_merge_roundtrip(self):
        a, b = self._populated(), self._populated()
        merged = Profiler()
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert merged.ops["matmul"].calls == 2
        assert merged.ops["matmul"].flops == pytest.approx(108.0)
        assert merged.layers["layers.0"].calls == 2
        assert merged.phases["campaign"].count == 2

    def test_snapshot_is_json_clean(self):
        import json

        snapshot = self._populated().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_merge_none_is_noop(self):
        profiler = Profiler()
        profiler.merge(None)
        profiler.merge({})
        assert not profiler.ops and not profiler.layers and not profiler.phases

    def test_publish_to_registry(self):
        registry = MetricsRegistry()
        self._populated().publish_to(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["profile.op.matmul.calls"] == 1
        assert snapshot["counters"]["profile.op.matmul.flops"] == 54
        assert snapshot["counters"]["profile.phase.campaign.count"] == 1
        assert "profile.layer.forward_s" in snapshot["histograms"]


class TestReporting:
    def _busy(self) -> Profiler:
        profiler = Profiler()
        out = np.zeros((64, 64), dtype=np.float32)
        profiler.record_tensor_op("matmul", out, (), flops=1e6)
        profiler.record_tensor_op("matmul", out, (), flops=1e6)
        profiler._layer_enter("layers.0")
        profiler._layer_exit("layers.0")
        with profiler.phase("campaign.forward"):
            with profiler.phase("forward.eval"):
                pass
        return profiler

    def test_hotspot_rows_sorted_by_self_time(self):
        rows = self._busy().hotspot_rows()
        assert rows
        self_times = [row["self_s"] for row in rows]
        assert self_times == sorted(self_times, reverse=True)
        kinds = {row["kind"] for row in rows}
        assert kinds == {"phase", "layer", "op"}

    def test_hotspot_table_renders(self):
        table = self._busy().hotspot_table()
        assert "self_s" in table and "cum_s" in table
        assert "matmul" in table and "layers.0" in table and "campaign.forward" in table
        assert "GFLOP" in table

    def test_hotspot_table_empty(self):
        assert "no samples" in Profiler().hotspot_table()

    def test_collapsed_stack_format(self):
        lines = self._busy().collapsed_stacks()
        assert lines
        for line in lines:
            stack, _, micros = line.rpartition(" ")
            assert stack and int(micros) > 0  # "frame;frame N"
        joined = "\n".join(lines)
        assert "campaign.forward;forward.eval" in joined or "campaign.forward " in joined
        assert any(line.startswith("ops;matmul ") for line in lines)
        assert any(line.startswith("layers;") for line in lines)

    def test_save_collapsed(self, tmp_path):
        path = tmp_path / "profile.collapsed"
        self._busy().save_collapsed(str(path))
        content = path.read_text()
        for line in content.strip().splitlines():
            frames, micros = line.rsplit(" ", 1)
            assert ";" in frames or frames
            assert micros.isdigit()


class TestWorkerPropagation:
    def test_worker_config_carries_profile_flag(self):
        assert obs.worker_config().profile is False
        obs.configure(profiler=True)
        config = obs.worker_config()
        assert config.profile is True
        obs.apply_worker_config(config)
        assert obs.profiler() is not None

    def test_drain_worker_report_ships_profile(self):
        obs.configure(profiler=True)
        out = np.zeros(2, dtype=np.float32)
        obs.profiler().record_tensor_op("add", out, ())
        report = obs.drain_worker_report()
        assert report["profile"]["ops"]["add"]["calls"] == 1

    def test_drain_omits_empty_profile(self):
        obs.configure(profiler=True)
        assert "profile" not in obs.drain_worker_report()
