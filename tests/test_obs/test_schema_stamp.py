"""The artifact version stamp: emitted everywhere, tolerated when absent.

Every obs-emitted artifact (metrics digest, trace export, progress JSONL
header, bench record, postmortem bundle) carries ``schema_version`` +
``repro_version``; every loader accepts a stamp-less artifact as v0.
"""

import json

import pytest

import repro
import repro.obs as obs
from repro.bench.harness import CaseStats, make_record, validate_bench_record
from repro.obs import ProgressEvent
from repro.obs.schema import SCHEMA_VERSION, artifact_stamp, artifact_version


class TestStamp:
    def test_stamp_fields(self):
        stamp = artifact_stamp()
        assert stamp == {
            "schema_version": SCHEMA_VERSION,
            "repro_version": repro.__version__,
        }

    def test_version_of_stamped_payload(self):
        assert artifact_version(artifact_stamp()) == SCHEMA_VERSION

    def test_missing_field_is_v0(self):
        assert artifact_version({}) == 0
        assert artifact_version(None) == 0

    def test_garbage_field_is_v0(self):
        assert artifact_version({"schema_version": "not a number"}) == 0
        assert artifact_version({"schema_version": None}) == 0

    def test_numeric_strings_accepted(self):
        assert artifact_version({"schema_version": "2"}) == 2


class TestEmitters:
    def test_trace_export_carries_the_stamp(self):
        obs.configure(tracer=True)
        with obs.tracer().span("unit.span"):
            pass
        document = obs.tracer().export()
        assert document["otherData"]["schema_version"] == SCHEMA_VERSION
        assert document["otherData"]["repro_version"] == repro.__version__

    def test_progress_jsonl_header_carries_the_stamp(self, tmp_path):
        from repro.obs import JsonlSink

        path = str(tmp_path / "progress.jsonl")
        sink = JsonlSink(path)
        sink.publish(ProgressEvent(kind="x"))
        sink.close()
        with open(path, encoding="utf-8") as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "progress.header"
        assert artifact_version(header) == SCHEMA_VERSION
        assert header["repro_version"] == repro.__version__

    def test_status_document_carries_the_stamp(self):
        from repro.obs.server import StatusTracker

        status = StatusTracker().status()
        assert artifact_version(status) == SCHEMA_VERSION

    def test_bench_record_carries_the_stamp(self):
        record = make_record(
            "unit",
            {"case": CaseStats.from_samples([0.1, 0.2, 0.3], warmup=1)},
            quick=True,
            seed=0,
        )
        assert artifact_version(record) == SCHEMA_VERSION
        validate_bench_record(record)


class TestLoaders:
    def test_bench_loader_accepts_stampless_v0_record(self):
        record = make_record(
            "unit",
            {"case": CaseStats.from_samples([0.1], warmup=0)},
            quick=True,
            seed=0,
        )
        del record["schema_version"]
        del record["repro_version"]
        validate_bench_record(record)  # v0: accepted

    def test_bench_loader_rejects_future_schema(self):
        record = make_record(
            "unit",
            {"case": CaseStats.from_samples([0.1], warmup=0)},
            quick=True,
            seed=0,
        )
        record["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than"):
            validate_bench_record(record)
