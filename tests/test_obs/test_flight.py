"""Flight recorder: bounded ring, postmortem bundles, executor hooks.

The recorder is the "what happened just before it broke" instrument, so
the tests pin three guarantees: the ring stays bounded (with honest drop
accounting), a dumped bundle round-trips through ``load_postmortem``
(including stamp-less v0 bundles), and the executor auto-dumps exactly
when a run aborts or degrades.
"""

import json
import os
import signal

import pytest

import repro.obs as obs
from repro.exec import (
    CampaignExecutionError,
    ForwardSpec,
    InjectorRecipe,
    ParallelCampaignExecutor,
)
from repro.faults import TargetSpec
from repro.obs import flight
from repro.obs.progress import ProgressEvent
from repro.utils.persist import atomic_write_json


@pytest.fixture(autouse=True)
def no_leaked_recorder():
    flight.uninstall()
    yield
    flight.uninstall()


def _always_crash_builder():
    os._exit(5)


class TestRing:
    def test_ring_is_bounded_and_counts_drops(self):
        recorder = flight.FlightRecorder(capacity=3)
        for index in range(5):
            recorder.record("tick", index=index)
        events = recorder.events()
        assert [e["index"] for e in events] == [2, 3, 4]  # oldest fell off
        assert recorder.recorded == 5
        assert recorder.dropped == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            flight.FlightRecorder(capacity=0)

    def test_record_event_keeps_the_envelope(self):
        recorder = flight.FlightRecorder()
        recorder.record_event(ProgressEvent(kind="chaos.fired", payload={"site": "pipe.drop"}))
        (event,) = recorder.events()
        assert event["kind"] == "chaos.fired"
        assert event["site"] == "pipe.drop"
        assert event["pid"] == os.getpid()

    def test_installed_recorder_captures_published_events(self):
        recorder = flight.install(flight.FlightRecorder())
        obs.publish("executor.retry", task=1, cause="crash")
        assert recorder.events()[0]["kind"] == "executor.retry"

    def test_module_hook_is_a_noop_when_uninstalled(self):
        flight.record("tick")  # must not raise
        assert flight.autodump("whatever") is None


class TestBundles:
    def test_dump_roundtrips_through_load_postmortem(self, tmp_path):
        recorder = flight.FlightRecorder(capacity=8, autodump_dir=str(tmp_path))
        recorder.record("a", n=1)
        recorder.record("b", n=2)
        path = recorder.dump(reason="unit.test", stats={"tasks": 4, "failed": 1})
        assert recorder.dumps == [path]

        bundle = flight.load_postmortem(path)
        assert bundle["bundle"] == "repro-postmortem"
        assert bundle["reason"] == "unit.test"
        assert bundle["schema_version"] >= 1
        assert [e["kind"] for e in bundle["events"]] == ["a", "b"]
        assert bundle["executor"] == {"tasks": 4, "failed": 1}
        assert bundle["environment"]["python"]

    def test_bundle_includes_metrics_snapshot(self, tmp_path):
        obs.configure(metrics=True)
        obs.metrics().inc("evaluations", 7)
        recorder = flight.FlightRecorder(autodump_dir=str(tmp_path))
        bundle = flight.load_postmortem(recorder.dump(reason="with.metrics"))
        assert bundle["metrics"]["counters"]["evaluations"] == 7

    def test_dump_without_dir_or_path_raises(self):
        with pytest.raises(ValueError, match="autodump_dir"):
            flight.FlightRecorder().dump(reason="nowhere")

    def test_maybe_autodump_is_silent_without_a_dir(self):
        assert flight.FlightRecorder().maybe_autodump("x") is None

    def test_v0_bundle_without_stamp_still_loads(self, tmp_path):
        path = str(tmp_path / "old.json")
        atomic_write_json(
            path, {"bundle": "repro-postmortem", "reason": "legacy", "events": []}
        )
        bundle = flight.load_postmortem(path)
        assert bundle["schema_version"] == 0
        assert bundle["repro_version"] is None

    def test_non_bundle_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-bundle.json")
        atomic_write_json(path, {"kind": "something else"})
        with pytest.raises(flight.PostmortemError, match="not a postmortem"):
            flight.load_postmortem(path)

    def test_bundle_without_events_rejected(self, tmp_path):
        path = str(tmp_path / "no-events.json")
        atomic_write_json(path, {"bundle": "repro-postmortem", "events": None})
        with pytest.raises(flight.PostmortemError, match="events"):
            flight.load_postmortem(path)

    def test_bundle_is_json_safe(self, tmp_path):
        recorder = flight.FlightRecorder(autodump_dir=str(tmp_path))
        recorder.record("nan.carrier", value=float("nan"))
        bundle = recorder.bundle("sanitise")
        json.dumps(bundle, allow_nan=False)  # must not raise
        assert bundle["events"][0]["value"] is None


class TestExecutorHooks:
    def test_abort_and_degrade_autodump(self, trained_mlp, moons_eval, tmp_path):
        eval_x, eval_y = moons_eval
        poison = InjectorRecipe.from_model(
            trained_mlp,
            eval_x,
            eval_y,
            spec=TargetSpec.weights_and_biases(),
            seed=7,
            model_builder=_always_crash_builder,
        )
        recorder = flight.install(flight.FlightRecorder(autodump_dir=str(tmp_path)))

        degraded = ParallelCampaignExecutor(
            poison, workers=2, max_attempts=1, on_failure="degrade", backoff_s=0.001
        )
        (result,) = degraded.run([ForwardSpec(p=1e-2, samples=8)])
        assert result is None and degraded.stats.failed == 1
        assert len(recorder.dumps) == 1
        bundle = flight.load_postmortem(recorder.dumps[0])
        assert bundle["reason"] == "executor.degraded"
        assert bundle["executor"]["failed"] == 1

        aborting = ParallelCampaignExecutor(
            poison, workers=2, max_attempts=1, on_failure="abort", backoff_s=0.001
        )
        with pytest.raises(CampaignExecutionError):
            aborting.run([ForwardSpec(p=1e-2, samples=8)])
        assert len(recorder.dumps) == 2
        assert flight.load_postmortem(recorder.dumps[1])["reason"] == "executor.abort"

    def test_clean_run_dumps_nothing(self, recipe, tmp_path):
        recorder = flight.install(flight.FlightRecorder(autodump_dir=str(tmp_path)))
        ParallelCampaignExecutor(recipe, workers=1).run([ForwardSpec(p=1e-3, samples=8)])
        assert recorder.dumps == []
        assert not any(name.startswith("postmortem-") for name in os.listdir(tmp_path))


@pytest.mark.skipif(not hasattr(signal, "SIGUSR1"), reason="platform has no SIGUSR1")
class TestSignalDump:
    def test_sigusr1_dumps_a_bundle(self, tmp_path):
        recorder = flight.FlightRecorder(autodump_dir=str(tmp_path))
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            assert flight.enable_signal_dump(recorder) is True
            recorder.record("pre.signal", n=1)
            os.kill(os.getpid(), signal.SIGUSR1)
            assert len(recorder.dumps) == 1
            bundle = flight.load_postmortem(recorder.dumps[0])
            assert bundle["reason"] == "sigusr1"
            assert bundle["events"][0]["kind"] == "pre.signal"
        finally:
            signal.signal(signal.SIGUSR1, previous)
