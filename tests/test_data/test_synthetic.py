"""2-D synthetic distributions and the procedural image dataset."""

import numpy as np
import pytest

from repro.data import (
    SyntheticImageConfig,
    gaussian_blobs,
    make_synthetic_images,
    spirals,
    two_moons,
    xor_clusters,
)
from repro.data.images import class_basis


class TestTwoMoons:
    def test_shapes_and_labels(self):
        x, y = two_moons(101, rng=0)
        assert x.shape == (101, 2)
        assert x.dtype == np.float32
        assert set(np.unique(y)) == {0, 1}

    def test_roughly_balanced(self):
        _, y = two_moons(1000, rng=1)
        assert 0.45 < y.mean() < 0.55

    def test_deterministic(self):
        a, _ = two_moons(50, rng=3)
        b, _ = two_moons(50, rng=3)
        assert np.array_equal(a, b)

    def test_moons_are_separated_at_low_noise(self):
        x, y = two_moons(2000, noise=0.02, rng=2)
        # Upper moon (class 0) lives at higher y on the left side.
        assert x[y == 0][:, 1].mean() > x[y == 1][:, 1].mean()

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            two_moons(1)


class TestOtherDistributions:
    def test_blobs_default_three_classes(self):
        x, y = gaussian_blobs(300, rng=0)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_blobs_custom_centers(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        x, y = gaussian_blobs(500, centers=centers, scale=0.1, rng=1)
        assert np.allclose(x[y == 1].mean(axis=0), [10, 10], atol=0.2)

    def test_spirals_binary(self):
        x, y = spirals(200, rng=0)
        assert x.shape == (200, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_xor_clusters_structure(self):
        x, y = xor_clusters(2000, scale=0.05, rng=0)
        # Same-sign quadrants are class 0.
        same_sign = (x[:, 0] * x[:, 1]) > 0
        assert (y[same_sign] == 0).mean() > 0.95


class TestSyntheticImages:
    def test_shapes_and_dtypes(self):
        cfg = SyntheticImageConfig(image_size=8, seed=0)
        train, test = make_synthetic_images(cfg, 40, 20)
        assert train.features.shape == (40, 3, 8, 8)
        assert train.features.dtype == np.float32
        assert len(test) == 20

    def test_channelwise_standardisation(self):
        cfg = SyntheticImageConfig(image_size=8, seed=0)
        train, _ = make_synthetic_images(cfg, 200, 10)
        assert np.allclose(train.features.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)
        assert np.allclose(train.features.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_deterministic_in_seed(self):
        cfg = SyntheticImageConfig(image_size=8, seed=5)
        a, _ = make_synthetic_images(cfg, 10, 5)
        b, _ = make_synthetic_images(cfg, 10, 5)
        assert np.array_equal(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_train_test_differ(self):
        cfg = SyntheticImageConfig(image_size=8, seed=5)
        train, test = make_synthetic_images(cfg, 10, 10)
        assert not np.array_equal(train.features, test.features)

    def test_basis_shared_across_splits(self):
        cfg = SyntheticImageConfig(image_size=8, seed=2)
        basis_a = class_basis(cfg)
        basis_b = class_basis(cfg)
        assert np.array_equal(basis_a, basis_b)
        assert basis_a.shape == (10, cfg.basis_rank, 3, 8, 8)

    def test_noise_knob_controls_difficulty(self):
        # Classes should be more linearly separable at low noise.
        def class_gap(noise):
            cfg = SyntheticImageConfig(image_size=8, noise=noise, seed=3)
            train, _ = make_synthetic_images(cfg, 400, 10)
            means = np.stack([
                train.features[train.labels == c].mean(axis=0).reshape(-1)
                for c in range(10) if (train.labels == c).any()
            ])
            spread = np.linalg.norm(means - means.mean(axis=0), axis=1).mean()
            return spread

        assert class_gap(0.2) > class_gap(5.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_size=2)
        with pytest.raises(ValueError):
            SyntheticImageConfig(noise=-1.0)
        with pytest.raises(ValueError):
            make_synthetic_images(SyntheticImageConfig(), 0, 10)
