"""Seven-segment digit dataset."""

import numpy as np
import pytest

from repro.data import make_digit_dataset, render_digit
from repro.data.digits import SEGMENTS


class TestRenderDigit:
    def test_canvas_shape_and_range(self):
        img = render_digit(3, size=20)
        assert img.shape == (20, 20)
        assert img.min() == 0.0 and img.max() == 1.0

    def test_all_digits_render_distinctly(self):
        renders = {d: render_digit(d, size=16).tobytes() for d in range(10)}
        assert len(set(renders.values())) == 10

    def test_eight_has_most_ink(self):
        # 8 lights every segment, so it must have the maximal lit area.
        areas = {d: render_digit(d, size=16).sum() for d in range(10)}
        assert areas[8] == max(areas.values())
        assert areas[1] == min(areas.values())  # 1 lights only two segments

    def test_one_is_right_verticals_only(self):
        img = render_digit(1, size=16)
        # No ink on the left half.
        assert img[:, : 16 // 4].sum() == 0.0

    def test_offset_shifts_glyph(self):
        base = render_digit(0, size=16)
        shifted = render_digit(0, size=16, offset=(2, 0))
        assert not np.array_equal(base, shifted)

    def test_segment_table_complete(self):
        assert set(SEGMENTS) == set(range(10))
        assert all(len(v) == 7 for v in SEGMENTS.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            render_digit(10)
        with pytest.raises(ValueError):
            render_digit(0, size=4)
        with pytest.raises(ValueError):
            render_digit(0, thickness=0)


class TestDigitDataset:
    def test_shapes_and_standardisation(self):
        ds = make_digit_dataset(100, size=16, rng=0)
        assert ds.features.shape == (100, 1, 16, 16)
        assert abs(float(ds.features.mean())) < 1e-4
        assert float(ds.features.std()) == pytest.approx(1.0, abs=1e-3)

    def test_all_classes_present(self):
        ds = make_digit_dataset(500, rng=1)
        assert set(np.unique(ds.labels)) == set(range(10))

    def test_deterministic(self):
        a = make_digit_dataset(50, rng=7)
        b = make_digit_dataset(50, rng=7)
        assert np.array_equal(a.features, b.features)

    def test_learnable_by_small_cnn(self):
        """End-to-end: LeNet reaches well-above-chance accuracy quickly."""
        from repro.data import DataLoader
        from repro.nn import LeNet
        from repro.train import Adam, Trainer

        train = make_digit_dataset(800, size=16, noise=0.3, rng=0)
        test = make_digit_dataset(200, size=16, noise=0.3, rng=1)
        model = LeNet(in_channels=1, num_classes=10, image_size=16, rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3))
        result = trainer.fit(
            DataLoader(train, batch_size=64, shuffle=True, rng=2),
            epochs=4,
            val_loader=DataLoader(test, batch_size=200),
        )
        assert result.final_val_accuracy > 0.5  # chance is 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            make_digit_dataset(0)
        with pytest.raises(ValueError):
            make_digit_dataset(10, noise=-1.0)
