"""ArrayDataset, DataLoader, and splits."""

import numpy as np
import pytest

from repro.data import ArrayDataset, DataLoader, train_test_split


def _dataset(n=10, dim=3):
    rng = np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(n, dim)), rng.integers(0, 4, n))


class TestArrayDataset:
    def test_len_getitem(self):
        ds = _dataset(5)
        assert len(ds) == 5
        x, y = ds[2]
        assert x.shape == (3,)
        assert isinstance(y, int)

    def test_dtype_normalisation(self):
        ds = ArrayDataset(np.zeros((2, 2), dtype=np.float64), np.zeros(2, dtype=np.int32))
        assert ds.features.dtype == np.float32
        assert ds.labels.dtype == np.int64

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_labels_must_be_1d(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_subset(self):
        ds = _dataset(10)
        sub = ds.subset(np.array([0, 5, 9]))
        assert len(sub) == 3
        assert np.array_equal(sub.features[1], ds.features[5])

    def test_num_classes(self):
        ds = ArrayDataset(np.zeros((4, 1)), np.array([0, 2, 1, 2]))
        assert ds.num_classes == 3


class TestDataLoader:
    def test_batches_cover_everything(self):
        ds = _dataset(10)
        loader = DataLoader(ds, batch_size=3)
        seen = sum(len(y) for _, y in loader)
        assert seen == 10
        assert len(loader) == 4

    def test_drop_last(self):
        loader = DataLoader(_dataset(10), batch_size=3, drop_last=True)
        assert len(loader) == 3
        assert sum(len(y) for _, y in loader) == 9

    def test_shuffle_is_seeded(self):
        ds = _dataset(20)
        a = [y.tolist() for _, y in DataLoader(ds, batch_size=5, shuffle=True, rng=7)]
        b = [y.tolist() for _, y in DataLoader(ds, batch_size=5, shuffle=True, rng=7)]
        assert a == b

    def test_shuffle_changes_order_across_epochs(self):
        ds = _dataset(50)
        loader = DataLoader(ds, batch_size=50, shuffle=True, rng=7)
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second  # RNG advances between epochs

    def test_no_shuffle_preserves_order(self):
        ds = _dataset(6)
        batches = [y for _, y in DataLoader(ds, batch_size=2)]
        assert np.array_equal(np.concatenate(batches), ds.labels)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(_dataset(), batch_size=0)


class TestSplit:
    def test_sizes(self):
        train, test = train_test_split(_dataset(100), test_fraction=0.2, rng=0)
        assert len(train) == 80
        assert len(test) == 20

    def test_disjoint_and_complete(self):
        ds = ArrayDataset(np.arange(20).reshape(20, 1), np.zeros(20))
        train, test = train_test_split(ds, test_fraction=0.25, rng=1)
        combined = sorted(np.concatenate([train.features, test.features]).reshape(-1).tolist())
        assert combined == list(range(20))

    def test_validation(self):
        with pytest.raises(ValueError):
            train_test_split(_dataset(), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(ArrayDataset(np.zeros((1, 1)), np.zeros(1)), 0.5)
