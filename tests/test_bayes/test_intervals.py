"""The shared central-interval convention and its degenerate-case armor.

``central_tails`` is the one definition of "central interval" every
summary in the library derives from; ``beta_central_interval`` is the
hardened Beta evaluation the estimator telemetry leans on for ``k = 0``
and ``k = n`` strata, which must produce valid clamped intervals — never
``NaN`` — for the document to stay plottable.
"""

import math

import numpy as np
import pytest

from repro.bayes.distributions import Beta
from repro.bayes.intervals import beta_central_interval, central_tails, clamp_unit_interval


class TestCentralTails:
    def test_tails_split_the_complement_evenly(self):
        lo, hi = central_tails(0.95)
        assert lo == pytest.approx(0.025) and hi == pytest.approx(0.975)
        assert lo + hi == 1.0
        assert central_tails(0.5) == (0.25, 0.75)

    @pytest.mark.parametrize("mass", [0.0, 1.0, -0.1, 1.5])
    def test_mass_outside_open_interval_rejected(self, mass):
        with pytest.raises(ValueError, match="mass"):
            central_tails(mass)


class TestClampUnitInterval:
    def test_finite_interval_passes_through(self):
        assert clamp_unit_interval(0.2, 0.8) == (0.2, 0.8)

    def test_non_finite_endpoints_collapse_to_support_bounds(self):
        assert clamp_unit_interval(float("nan"), 0.7) == (0.0, 0.7)
        assert clamp_unit_interval(0.3, float("nan")) == (0.3, 1.0)
        assert clamp_unit_interval(float("-inf"), float("inf")) == (0.0, 1.0)

    def test_out_of_range_endpoints_clipped(self):
        assert clamp_unit_interval(-0.5, 1.5) == (0.0, 1.0)

    def test_ordering_restored(self):
        assert clamp_unit_interval(0.9, 0.1) == (0.1, 0.9)


class TestBetaCentralInterval:
    def test_matches_scipy_for_well_behaved_shapes(self):
        from scipy import stats as sps

        lo, hi = beta_central_interval(5.0, 15.0, 0.9)
        assert lo == pytest.approx(sps.beta.ppf(0.05, 5.0, 15.0))
        assert hi == pytest.approx(sps.beta.ppf(0.95, 5.0, 15.0))

    @pytest.mark.parametrize("n", [1, 10, 1000, 100000])
    def test_k_zero_posterior_yields_valid_interval(self, n):
        # Jeffreys update with zero degraded outcomes: mass piled at 0
        lo, hi = beta_central_interval(0.5, 0.5 + n)
        assert math.isfinite(lo) and math.isfinite(hi)
        assert 0.0 <= lo <= hi <= 1.0
        if n >= 10:
            assert hi < 0.5  # the interval hugs the empty-rate endpoint

    @pytest.mark.parametrize("n", [1, 10, 1000, 100000])
    def test_k_equals_n_posterior_yields_valid_interval(self, n):
        lo, hi = beta_central_interval(0.5 + n, 0.5)
        assert math.isfinite(lo) and math.isfinite(hi)
        assert 0.0 <= lo <= hi <= 1.0
        if n >= 10:
            assert lo > 0.5

    def test_vectorised_shapes_stay_valid(self):
        n = np.array([1.0, 10.0, 1e4, 1e6])
        lo, hi = beta_central_interval(0.5, 0.5 + n)
        assert np.all(np.isfinite(lo)) and np.all(np.isfinite(hi))
        assert np.all((0.0 <= lo) & (lo <= hi) & (hi <= 1.0))
        # tighter with more data
        widths = hi - lo
        assert np.all(np.diff(widths) < 0)

    def test_beta_interval_delegates_here(self):
        d = Beta(3.0, 9.0)
        assert d.interval(0.9) == beta_central_interval(3.0, 9.0, 0.9)

    def test_beta_interval_edge_cases_no_longer_nan(self):
        # the satellite fix: k=0 / k=n conjugate updates used to be able
        # to surface NaN endpoints through Beta.interval
        for a, b in [(0.5, 100000.5), (100000.5, 0.5), (0.5, 0.5)]:
            lo, hi = Beta(a, b).interval()
            assert math.isfinite(lo) and math.isfinite(hi)
            assert 0.0 <= lo <= hi <= 1.0


class TestSharedConvention:
    def test_bootstrap_ci_uses_the_same_tails(self, ):
        from repro.analysis.stats import bootstrap_ci

        rng = np.random.default_rng(0)
        data = rng.normal(size=200)
        lo, hi = bootstrap_ci(data, confidence=0.9, n_boot=200, rng=rng)
        assert lo < np.mean(data) < hi

    def test_bootstrap_ci_rejects_bad_confidence_via_central_tails(self):
        from repro.analysis.stats import bootstrap_ci

        with pytest.raises(ValueError, match="mass"):
            bootstrap_ci(np.arange(10.0), confidence=1.0)

    def test_error_posterior_credible_interval_uses_central_tails(self):
        from repro.core.posterior import ErrorPosterior

        samples = np.linspace(0.0, 1.0, 101)
        posterior = ErrorPosterior(samples=samples, golden_error=0.1)
        lo, hi = posterior.credible_interval(0.9)
        assert lo == pytest.approx(np.quantile(samples, 0.05))
        assert hi == pytest.approx(np.quantile(samples, 0.95))
