"""Distribution sampling statistics and log-densities."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes import Bernoulli, Beta, Binomial, Categorical, Normal, PoissonBinomial


class TestBernoulli:
    def test_sample_frequency(self, rng):
        draws = Bernoulli(0.3).sample(rng, size=20000)
        assert abs(draws.mean() - 0.3) < 0.02

    def test_log_prob(self):
        d = Bernoulli(0.25)
        assert d.log_prob(1) == pytest.approx(math.log(0.25))
        assert d.log_prob(0) == pytest.approx(math.log(0.75))

    def test_support_enforced(self):
        with pytest.raises(ValueError):
            Bernoulli(0.5).log_prob(2)

    def test_moments(self):
        d = Bernoulli(0.2)
        assert d.mean == 0.2
        assert d.variance == pytest.approx(0.16)

    def test_scalar_sample(self, rng):
        assert Bernoulli(0.5).sample(rng) in (0, 1)

    @given(st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=20, deadline=None)
    def test_probabilities_normalise(self, p):
        d = Bernoulli(p)
        total = math.exp(float(d.log_prob(0))) + math.exp(float(d.log_prob(1)))
        assert total == pytest.approx(1.0)


class TestBinomial:
    def test_pmf_sums_to_one(self):
        d = Binomial(20, 0.3)
        assert d.pmf(np.arange(21)).sum() == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy import stats as sps

        d = Binomial(15, 0.2)
        ks = np.arange(16)
        assert np.allclose(d.pmf(ks), sps.binom.pmf(ks, 15, 0.2))

    def test_sample_mean(self, rng):
        draws = Binomial(50, 0.4).sample(rng, size=5000)
        assert abs(draws.mean() - 20.0) < 0.5

    def test_moments(self):
        d = Binomial(10, 0.5)
        assert d.mean == 5.0
        assert d.variance == 2.5

    def test_support(self):
        with pytest.raises(ValueError):
            Binomial(5, 0.5).log_prob(6)


class TestCategorical:
    def test_sampling_frequencies(self, rng):
        d = Categorical(np.array([0.7, 0.2, 0.1]))
        draws = d.sample(rng, size=20000)
        freq = np.bincount(draws, minlength=3) / 20000
        assert np.allclose(freq, [0.7, 0.2, 0.1], atol=0.02)

    def test_normalisation_check(self):
        with pytest.raises(ValueError):
            Categorical(np.array([0.5, 0.2]))
        with pytest.raises(ValueError):
            Categorical(np.array([-0.5, 1.5]))

    def test_log_prob_indexing(self):
        d = Categorical(np.array([0.5, 0.5]))
        assert d.log_prob(np.array([0, 1])) == pytest.approx(math.log(0.5))
        with pytest.raises(ValueError):
            d.log_prob(2)


class TestNormal:
    def test_log_prob_matches_scipy(self):
        from scipy import stats as sps

        d = Normal(1.0, 2.0)
        xs = np.linspace(-5, 5, 11)
        assert np.allclose(d.log_prob(xs), sps.norm.logpdf(xs, 1.0, 2.0))

    def test_sample_moments(self, rng):
        draws = Normal(-2.0, 0.5).sample(rng, size=20000)
        assert abs(draws.mean() + 2.0) < 0.02
        assert abs(draws.std() - 0.5) < 0.02

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            Normal(0.0, 0.0)


class TestBeta:
    def test_posterior_update(self):
        posterior = Beta(1, 1).posterior(7, 3)
        assert posterior.a == 8 and posterior.b == 4
        assert posterior.mean == pytest.approx(8 / 12)

    def test_interval_contains_mean(self):
        d = Beta(5, 15)
        lo, hi = d.interval(0.95)
        assert lo < d.mean < hi

    def test_interval_narrows_with_data(self):
        wide = Beta(2, 2).interval()
        narrow = Beta(200, 200).interval()
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_support(self):
        with pytest.raises(ValueError):
            Beta(1, 1).log_prob(1.5)
        with pytest.raises(ValueError):
            Beta(0, 1)

    def test_log_prob_matches_scipy(self):
        from scipy import stats as sps

        d = Beta(3.0, 7.0)
        xs = np.linspace(0.05, 0.95, 10)
        assert np.allclose(d.log_prob(xs), sps.beta.logpdf(xs, 3, 7))


class TestPoissonBinomial:
    def test_reduces_to_binomial_for_equal_probs(self):
        pb = PoissonBinomial(np.full(12, 0.3))
        binom = Binomial(12, 0.3)
        ks = np.arange(13)
        assert np.allclose(np.exp(pb.log_prob(ks)), binom.pmf(ks), atol=1e-12)

    def test_heterogeneous_mean_variance(self):
        probs = np.array([0.1, 0.5, 0.9])
        pb = PoissonBinomial(probs)
        assert pb.mean == pytest.approx(1.5)
        assert pb.variance == pytest.approx((probs * (1 - probs)).sum())

    def test_sampling_matches_pmf_mean(self, rng):
        probs = np.array([0.2, 0.8, 0.5, 0.1])
        pb = PoissonBinomial(probs)
        draws = pb.sample(rng, size=10000)
        assert abs(draws.mean() - pb.mean) < 0.05

    def test_scalar_sample(self, rng):
        assert 0 <= PoissonBinomial(np.array([0.5, 0.5])).sample(rng) <= 2

    def test_support(self):
        pb = PoissonBinomial(np.array([0.5]))
        with pytest.raises(ValueError):
            pb.log_prob(2)
