"""Bayesian-network graph: construction, sampling, log-joint."""

import math

import numpy as np
import pytest

from repro.bayes import BayesianNetwork, Bernoulli, Categorical, Normal


def _coin_network():
    """b ~ Bern(0.5); y = 2b; z ~ Normal(y, 1)."""
    net = BayesianNetwork()
    net.random_variable("b", Bernoulli(0.5))
    net.deterministic("y", lambda pv: pv["b"] * 2.0, ("b",))
    net.random_variable("z", lambda pv: Normal(float(pv["y"]), 1.0), ("y",))
    return net


class TestConstruction:
    def test_duplicate_name_rejected(self):
        net = BayesianNetwork()
        net.random_variable("a", Bernoulli(0.5))
        with pytest.raises(ValueError):
            net.random_variable("a", Bernoulli(0.1))

    def test_unknown_parent_rejected(self):
        net = BayesianNetwork()
        with pytest.raises(ValueError):
            net.deterministic("y", lambda pv: 0, ("ghost",))

    def test_len_and_contains(self):
        net = _coin_network()
        assert len(net) == 3
        assert "b" in net and "q" not in net

    def test_random_variables_listing(self):
        assert _coin_network().random_variables() == ["b", "z"]

    def test_topological_order_parents_first(self):
        order = _coin_network().topological_order()
        assert order.index("b") < order.index("y") < order.index("z")


class TestSampling:
    def test_deterministic_node_computed(self, rng):
        trace = _coin_network().sample(rng)
        assert trace["y"] == trace["b"] * 2.0

    def test_clamping_given_values(self, rng):
        trace = _coin_network().sample(rng, given={"b": 1})
        assert trace["b"] == 1
        assert trace["y"] == 2.0

    def test_sample_distribution_of_child(self, rng):
        net = _coin_network()
        zs = [net.sample(rng, given={"b": 1})["z"] for _ in range(3000)]
        assert abs(np.mean(zs) - 2.0) < 0.1


class TestLogProb:
    def test_joint_of_coin_network(self, rng):
        net = _coin_network()
        trace = {"b": 1, "z": 2.0}
        expected = math.log(0.5) + float(Normal(2.0, 1.0).log_prob(2.0))
        assert net.log_prob(trace) == pytest.approx(expected)

    def test_deterministic_recomputed_when_missing(self):
        net = _coin_network()
        # 'y' omitted: log_prob must recompute it to evaluate z's density.
        value = net.log_prob({"b": 0, "z": 0.0})
        expected = math.log(0.5) + float(Normal(0.0, 1.0).log_prob(0.0))
        assert value == pytest.approx(expected)

    def test_missing_random_variable_raises(self):
        with pytest.raises(KeyError):
            _coin_network().log_prob({"b": 1})

    def test_categorical_chain(self, rng):
        net = BayesianNetwork()
        net.random_variable("c", Categorical(np.array([0.2, 0.8])))
        net.deterministic("d", lambda pv: pv["c"] + 10, ("c",))
        trace = net.sample(rng)
        assert trace["d"] == trace["c"] + 10
        assert net.log_prob(trace) == pytest.approx(
            math.log([0.2, 0.8][trace["c"]])
        )
