"""BayesianFaultInjector: campaigns and invariants."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, FaultSurface, TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestConstruction:
    def test_golden_error_is_low_for_trained_net(self, injector):
        assert injector.golden_error < 0.05

    def test_misaligned_batch_rejected(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError):
            BayesianFaultInjector(trained_mlp, eval_x, eval_y[:-1])

    def test_empty_batch_rejected(self, trained_mlp):
        with pytest.raises(ValueError):
            BayesianFaultInjector(trained_mlp, np.zeros((0, 2)), np.zeros(0))

    def test_spec_selecting_nothing_rejected(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        spec = TargetSpec(include_layers=("nonexistent.*",))
        with pytest.raises(ValueError, match="selects nothing"):
            BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec)


class TestStatistic:
    def test_empty_configuration_reproduces_golden(self, injector):
        from repro.faults import FaultConfiguration

        statistic = injector.make_statistic(BernoulliBitFlipModel(0.0), np.random.default_rng(0))
        empty = FaultConfiguration.empty(injector.parameter_targets)
        assert statistic(empty) == pytest.approx(injector.golden_error)

    def test_statistic_restores_weights(self, injector, rng):
        from repro.faults import FaultConfiguration

        before = {n: p.data.copy() for n, p in injector.parameter_targets}
        statistic = injector.make_statistic(BernoulliBitFlipModel(0.0), rng)
        cfg = FaultConfiguration.sample(injector.parameter_targets, BernoulliBitFlipModel(0.1), rng)
        statistic(cfg)
        for name, param in injector.parameter_targets:
            assert np.array_equal(before[name], param.data)


class TestForwardCampaign:
    def test_small_p_error_near_golden(self, injector):
        campaign = injector.forward_campaign(1e-6, samples=60)
        assert campaign.mean_error == pytest.approx(injector.golden_error, abs=0.02)

    def test_large_p_error_much_higher(self, injector):
        campaign = injector.forward_campaign(0.05, samples=60)
        assert campaign.mean_error > injector.golden_error + 0.1

    def test_error_monotone_in_p_on_average(self, injector):
        errors = [
            injector.forward_campaign(p, samples=80).mean_error
            for p in (1e-5, 1e-3, 1e-1)
        ]
        assert errors[0] <= errors[1] <= errors[2]

    def test_reproducible_from_seed(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        make = lambda: BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=99
        )
        a = make().forward_campaign(1e-2, samples=40)
        b = make().forward_campaign(1e-2, samples=40)
        assert np.array_equal(a.chains.matrix(), b.chains.matrix())

    def test_different_p_use_independent_streams(self, injector):
        a = injector.forward_campaign(1e-2, samples=40)
        b = injector.forward_campaign(2e-2, samples=40)
        assert not np.array_equal(a.chains.matrix(), b.chains.matrix())

    def test_mean_flips_tracks_expectation(self, injector):
        p = 1e-3
        campaign = injector.forward_campaign(p, samples=100)
        n_bits = sum(param.size for _, param in injector.parameter_targets) * 32
        expected = n_bits * p
        assert campaign.mean_flips == pytest.approx(expected, rel=0.5)

    def test_summary_row_keys(self, injector):
        row = injector.forward_campaign(1e-3, samples=20).summary_row()
        assert {"p", "mean_error_pct", "golden_error_pct", "evaluations"} <= set(row)


class TestMCMCCampaign:
    def test_agrees_with_forward_sampling(self, injector):
        p = 1e-2
        forward = injector.forward_campaign(p, samples=300)
        mcmc = injector.mcmc_campaign(p, chains=4, steps=150)
        assert mcmc.mean_error == pytest.approx(forward.mean_error, abs=0.06)

    def test_completeness_report_attached(self, injector):
        campaign = injector.mcmc_campaign(1e-2, chains=2, steps=40)
        assert campaign.completeness is not None
        assert campaign.completeness.steps == 40

    def test_requires_parameter_surfaces(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        spec = TargetSpec(surfaces=frozenset({FaultSurface.INPUTS}))
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=0)
        with pytest.raises(ValueError, match="parameter fault surfaces"):
            injector.mcmc_campaign(1e-3)

    def test_proposal_weight_validation(self, injector):
        with pytest.raises(ValueError):
            injector.mcmc_campaign(1e-3, toggle_weight=0.0, resample_weight=0.0)


class TestAdaptiveCampaign:
    def test_stops_when_complete(self, injector):
        from repro.mcmc import CompletenessCriterion

        criterion = CompletenessCriterion(stderr_tolerance=0.02, min_ess=50)
        campaign = injector.run_until_complete(
            1e-2, criterion=criterion, chains=2, batch_steps=40, max_steps=400
        )
        assert campaign.completeness.complete
        assert campaign.chains.steps <= 400

    def test_respects_max_steps_when_impossible(self, injector):
        from repro.mcmc import CompletenessCriterion

        criterion = CompletenessCriterion(stderr_tolerance=1e-9)
        campaign = injector.run_until_complete(
            1e-2, criterion=criterion, chains=2, batch_steps=50, max_steps=100
        )
        assert not campaign.completeness.complete
        assert campaign.chains.steps == 100


class TestTemperedCampaign:
    def test_reweighted_estimate_in_plausible_range(self, injector):
        p = 2e-3
        forward = injector.forward_campaign(p, samples=300)
        _, weighted = injector.tempered_campaign(p, beta=5.0, chains=2, steps=200)
        assert weighted == pytest.approx(forward.mean_error, abs=0.08)

    def test_beta_validation(self, injector):
        with pytest.raises(ValueError):
            injector.tempered_campaign(1e-3, beta=-1.0)


class TestTransientSurfaces:
    def test_activation_only_campaign_runs(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        spec = TargetSpec(surfaces=frozenset({FaultSurface.ACTIVATIONS}))
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=1)
        campaign = injector.forward_campaign(1e-2, samples=30)
        assert campaign.mean_error >= 0.0

    def test_all_surfaces_at_least_as_bad_as_weights_only(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        p = 1e-2
        weights = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec(), seed=2
        ).forward_campaign(p, samples=120)
        everything = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.all_surfaces(), seed=2
        ).forward_campaign(p, samples=120)
        assert everything.mean_error >= weights.mean_error - 0.03
