"""Fault-propagation tracing."""

import numpy as np
import pytest

from repro.core import trace_fault_propagation
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, resolve_parameter_targets


@pytest.fixture()
def targets(trained_mlp):
    return resolve_parameter_targets(trained_mlp, TargetSpec.weights_and_biases())


class TestTrace:
    def test_empty_configuration_no_divergence(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(
            trained_mlp, eval_x, FaultConfiguration.empty(targets)
        )
        assert trace.prediction_change_fraction == 0.0
        assert np.allclose(trace.divergence_profile(), 0.0)
        assert trace.first_corrupted_layer() is None
        assert trace.amplification() == 0.0

    def test_fault_in_first_layer_diverges_from_first_layer(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        rng = np.random.default_rng(0)
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        # Flip the top mantissa + low exponent bits of one first-layer weight.
        masks["layers.0.weight"][0, 0] = np.uint32(1) << np.uint32(23)
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.first_corrupted_layer() == "layers.0"
        assert trace.layers[0].relative_l2 > 0

    def test_fault_in_last_layer_leaves_first_clean(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        masks["layers.2.weight"][0, 0] = np.uint32(1) << np.uint32(23)
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.layers[0].relative_l2 == 0.0
        assert trace.first_corrupted_layer() == "layers.2"

    def test_model_restored_after_trace(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        before = {n: p.data.copy() for n, p in targets}
        configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), np.random.default_rng(1))
        trace_fault_propagation(trained_mlp, eval_x, configuration)
        for name, param in targets:
            assert np.array_equal(before[name], param.data)

    def test_non_finite_marked(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        masks["layers.0.weight"][0, 0] = np.uint32(1) << np.uint32(30)  # -> inf weight
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.layers[0].non_finite
        assert trace.layers[0].relative_l2 == float("inf")

    def test_table_rows(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration.empty(targets))
        rows = trace.table()
        assert [row["layer"] for row in rows] == ["layers.0", "layers.2"]

    def test_custom_layer_selection(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(
            trained_mlp, eval_x, FaultConfiguration.empty(targets), layers=["layers.2"]
        )
        assert len(trace.layers) == 1

    def test_validation(self, trained_mlp, targets):
        with pytest.raises(ValueError):
            trace_fault_propagation(trained_mlp, np.zeros((0, 2)), FaultConfiguration.empty(targets))
        with pytest.raises(ValueError):
            trace_fault_propagation(
                trained_mlp, np.zeros((2, 2), dtype=np.float32),
                FaultConfiguration.empty(targets), layers=[],
            )

    def test_resnet_trace_covers_all_layers(self, tiny_resnet, tiny_images):
        x, _ = tiny_images
        targets = resolve_parameter_targets(tiny_resnet, TargetSpec.weights_and_biases())
        configuration = FaultConfiguration.sample(
            targets, BernoulliBitFlipModel(1e-5), np.random.default_rng(2)
        )
        trace = trace_fault_propagation(tiny_resnet, x[:2], configuration)
        assert len(trace.layers) == 41  # every parameterised ResNet-18 layer
