"""Fault-propagation tracing."""

import numpy as np
import pytest

from repro.core import trace_fault_propagation
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, resolve_parameter_targets
from repro.nn import Conv2d, Dense, GlobalAvgPool2d, Sequential
from repro.nn.models.resnet import BasicBlock


def _zero_masks(targets):
    return {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}


@pytest.fixture()
def targets(trained_mlp):
    return resolve_parameter_targets(trained_mlp, TargetSpec.weights_and_biases())


class TestTrace:
    def test_empty_configuration_no_divergence(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(
            trained_mlp, eval_x, FaultConfiguration.empty(targets)
        )
        assert trace.prediction_change_fraction == 0.0
        assert np.allclose(trace.divergence_profile(), 0.0)
        assert trace.first_corrupted_layer() is None
        assert trace.amplification() == 0.0

    def test_fault_in_first_layer_diverges_from_first_layer(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        rng = np.random.default_rng(0)
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        # Flip the top mantissa + low exponent bits of one first-layer weight.
        masks["layers.0.weight"][0, 0] = np.uint32(1) << np.uint32(23)
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.first_corrupted_layer() == "layers.0"
        assert trace.layers[0].relative_l2 > 0

    def test_fault_in_last_layer_leaves_first_clean(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        masks["layers.2.weight"][0, 0] = np.uint32(1) << np.uint32(23)
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.layers[0].relative_l2 == 0.0
        assert trace.first_corrupted_layer() == "layers.2"

    def test_model_restored_after_trace(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        before = {n: p.data.copy() for n, p in targets}
        configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), np.random.default_rng(1))
        trace_fault_propagation(trained_mlp, eval_x, configuration)
        for name, param in targets:
            assert np.array_equal(before[name], param.data)

    def test_non_finite_marked(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        masks = {name: np.zeros(param.shape, dtype=np.uint32) for name, param in targets}
        masks["layers.0.weight"][0, 0] = np.uint32(1) << np.uint32(30)  # -> inf weight
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration(masks))
        assert trace.layers[0].non_finite
        assert trace.layers[0].relative_l2 == float("inf")

    def test_table_rows(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(trained_mlp, eval_x, FaultConfiguration.empty(targets))
        rows = trace.table()
        assert [row["layer"] for row in rows] == ["layers.0", "layers.2"]

    def test_custom_layer_selection(self, trained_mlp, moons_eval, targets):
        eval_x, _ = moons_eval
        trace = trace_fault_propagation(
            trained_mlp, eval_x, FaultConfiguration.empty(targets), layers=["layers.2"]
        )
        assert len(trace.layers) == 1

    def test_validation(self, trained_mlp, targets):
        with pytest.raises(ValueError):
            trace_fault_propagation(trained_mlp, np.zeros((0, 2)), FaultConfiguration.empty(targets))
        with pytest.raises(ValueError):
            trace_fault_propagation(
                trained_mlp, np.zeros((2, 2), dtype=np.float32),
                FaultConfiguration.empty(targets), layers=[],
            )

    def test_resnet_trace_covers_all_layers(self, tiny_resnet, tiny_images):
        x, _ = tiny_images
        targets = resolve_parameter_targets(tiny_resnet, TargetSpec.weights_and_biases())
        configuration = FaultConfiguration.sample(
            targets, BernoulliBitFlipModel(1e-5), np.random.default_rng(2)
        )
        trace = trace_fault_propagation(tiny_resnet, x[:2], configuration)
        assert len(trace.layers) == 41  # every parameterised ResNet-18 layer


class TestPropagationMechanisms:
    """The physics behind Fig. 3's flat depth profile: ReLU and batch-norm
    occasionally quench corruption while residual shortcuts carry it forward."""

    def test_relu_quenches_non_finite_corruption(self, trained_mlp, moons_eval, targets):
        # Force one first-layer weight to exactly -inf. With strictly
        # positive inputs the neuron's pre-activation is -inf, which the
        # ReLU between layers.0 and layers.2 maps back to 0 — so the
        # corruption is non-finite at depth 0 but finite again at depth 1.
        eval_x, _ = moons_eval
        x = np.abs(eval_x).astype(np.float32) + 0.5
        weight = trained_mlp.get_submodule("layers.0").weight
        current_bits = weight.data[0, 0].view(np.uint32)
        masks = _zero_masks(targets)
        masks["layers.0.weight"][0, 0] = current_bits ^ np.uint32(0xFF800000)  # -> -inf

        trace = trace_fault_propagation(trained_mlp, x, FaultConfiguration(masks))

        assert trace.layers[0].non_finite
        assert trace.layers[0].relative_l2 == float("inf")
        assert not trace.layers[1].non_finite  # quenched by the ReLU
        assert np.isfinite(trace.layers[1].relative_l2)
        assert trace.layers[1].relative_l2 > 0  # the quenched-to-0 neuron still diverges

    def test_batch_norm_quench_and_residual_pass_through(self):
        # A BasicBlock whose bn1 gamma is zero: the main path's output is a
        # constant (beta), so corruption entering the block dies inside the
        # main path — yet the identity shortcut carries it straight past, and
        # the classifier after the block still diverges.
        rng = np.random.default_rng(3)
        model = Sequential(
            Conv2d(1, 4, 3, padding=1, rng=rng),
            BasicBlock(4, 4, rng=rng),
            GlobalAvgPool2d(),
            Dense(4, 2, rng=rng),
        )
        model.eval()
        model.get_submodule("1.bn1").weight.data[:] = 0.0  # golden state: dead main path
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        masks = _zero_masks(targets)
        masks["0.weight"][0, 0, 0, 0] = np.uint32(1) << np.uint32(23)  # corrupt the stem

        x = np.random.default_rng(0).random((4, 1, 8, 8), dtype=np.float32)
        trace = trace_fault_propagation(model, x, FaultConfiguration(masks))
        by_name = {layer.layer: layer for layer in trace.layers}

        assert trace.first_corrupted_layer() == "0"
        assert by_name["1.conv1"].relative_l2 > 0  # corruption enters the block
        assert by_name["1.bn1"].relative_l2 == 0.0  # batch norm quenches it...
        assert by_name["1.conv2"].relative_l2 == 0.0  # ...so the main path is clean
        assert by_name["1.bn2"].relative_l2 == 0.0
        assert by_name["3"].relative_l2 > 0  # the shortcut carried it anyway

    def test_hooks_removed_when_forward_raises(self, trained_mlp, targets):
        # A bad input shape makes the traced forward pass raise mid-capture;
        # the hooks must not leak onto the model.
        with pytest.raises(Exception):
            trace_fault_propagation(
                trained_mlp, np.ones((2, 5), dtype=np.float32),
                FaultConfiguration.empty(targets),
            )
        for name in ("layers.0", "layers.2"):
            assert not trained_mlp.get_submodule(name)._forward_hooks
