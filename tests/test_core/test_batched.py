"""Batched multi-configuration evaluation: equivalence and speed."""

import time

import numpy as np
import pytest

from repro.core import BatchedMLPEvaluator, BayesianFaultInjector
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, FaultSurface, TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


@pytest.fixture()
def evaluator(injector):
    return BatchedMLPEvaluator(injector)


class TestEquivalence:
    def test_matches_sequential_statistic_exactly(self, injector, evaluator, rng):
        """Bit-for-bit agreement with the standard per-configuration path
        on the argmax decisions (float64 batched math vs float32 sequential
        can differ in ULPs, but decisions — hence errors — must agree)."""
        statistic = injector.make_statistic(None, rng)
        configurations = [
            FaultConfiguration.sample(injector.parameter_targets, BernoulliBitFlipModel(0.01), rng)
            for _ in range(25)
        ]
        batched = evaluator.evaluate(configurations)
        sequential = np.asarray([statistic(c) for c in configurations])
        assert np.allclose(batched, sequential, atol=1e-9)

    def test_empty_configuration_gives_golden(self, injector, evaluator):
        empty = FaultConfiguration.empty(injector.parameter_targets)
        errors = evaluator.evaluate([empty])
        assert errors[0] == pytest.approx(injector.golden_error)

    def test_handles_nonfinite_weights(self, injector, evaluator):
        name, param = injector.parameter_targets[0]
        masks = {n: np.zeros(p.shape, dtype=np.uint32) for n, p in injector.parameter_targets}
        masks[name][tuple(0 for _ in param.shape)] = np.uint32(1) << np.uint32(30)
        errors = evaluator.evaluate([FaultConfiguration(masks)])
        assert 0.0 <= errors[0] <= 1.0


class TestCampaignFrontEnd:
    def test_campaign_statistics_match_standard_path(self, injector, evaluator):
        p = 5e-3
        batched = evaluator.forward_campaign(p, samples=300)
        standard = injector.forward_campaign(p, samples=300)
        assert batched.method == "forward-batched"
        assert batched.mean_error == pytest.approx(standard.mean_error, abs=0.05)

    def test_not_slower_than_sequential(self, injector, evaluator):
        """Best-of-3 timing with generous slack: wall-clock tests on a
        shared box are noisy, so assert only that batching does not
        regress (typical observed speed-up on this MLP is 3-15x)."""
        p = 1e-2
        n = 200

        def best_of_three(fn):
            times = []
            for _ in range(3):
                start = time.perf_counter()
                fn()
                times.append(time.perf_counter() - start)
            return min(times)

        batched_time = best_of_three(lambda: evaluator.forward_campaign(p, samples=n))
        sequential_time = best_of_three(
            lambda: injector.forward_campaign(p, samples=n, stream="timing")
        )
        assert batched_time < 1.5 * sequential_time

    def test_validation(self, evaluator):
        with pytest.raises(ValueError):
            evaluator.forward_campaign(1e-3, samples=0)
        with pytest.raises(ValueError):
            evaluator.evaluate([])


class TestScope:
    def test_transient_surfaces_rejected(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y,
            spec=TargetSpec(surfaces=frozenset({FaultSurface.WEIGHTS, FaultSurface.ACTIVATIONS})),
            seed=0,
        )
        with pytest.raises(ValueError, match="parameter surfaces"):
            BatchedMLPEvaluator(injector)

    def test_conv_models_rejected(self, tiny_resnet, tiny_images):
        x, y = tiny_images
        injector = BayesianFaultInjector(
            tiny_resnet, x, y, spec=TargetSpec.single_layer("fc"), seed=0
        )
        with pytest.raises(TypeError):
            BatchedMLPEvaluator(injector)
