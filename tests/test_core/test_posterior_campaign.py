"""ErrorPosterior and CampaignResult summaries."""

import numpy as np
import pytest

from repro.core import ErrorPosterior


def _posterior(values, golden=0.01):
    return ErrorPosterior(np.asarray(values, dtype=np.float64), golden)


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            _posterior([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            _posterior([0.5, 1.2])
        with pytest.raises(ValueError):
            _posterior([-0.1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ErrorPosterior(np.zeros((2, 2)), 0.0)


class TestSummaries:
    def test_mean_std(self):
        p = _posterior([0.1, 0.2, 0.3])
        assert p.mean == pytest.approx(0.2)
        assert p.std == pytest.approx(0.1)

    def test_single_sample_std_zero(self):
        assert _posterior([0.5]).std == 0.0

    def test_credible_interval_ordering(self):
        rng = np.random.default_rng(0)
        p = _posterior(rng.uniform(0, 1, 500))
        lo, hi = p.credible_interval(0.9)
        assert 0 <= lo < p.mean < hi <= 1

    def test_credible_interval_mass_validation(self):
        with pytest.raises(ValueError):
            _posterior([0.1, 0.2]).credible_interval(1.5)

    def test_quantile(self):
        p = _posterior(np.linspace(0, 1, 101))
        assert p.quantile(0.5) == pytest.approx(0.5)


class TestFaultImpact:
    def test_excess_error(self):
        p = _posterior([0.11, 0.09], golden=0.05)
        assert p.excess_error == pytest.approx(0.05)

    def test_exceedance_default_threshold_is_golden(self):
        p = _posterior([0.0, 0.02, 0.5], golden=0.01)
        assert p.exceedance_probability() == pytest.approx(2 / 3)

    def test_exceedance_custom_threshold(self):
        p = _posterior([0.1, 0.2, 0.3])
        assert p.exceedance_probability(0.25) == pytest.approx(1 / 3)

    def test_sdc_beta_posterior_counts(self):
        p = _posterior([0.0, 0.0, 0.5, 0.5], golden=0.1)
        beta = p.sdc_beta_posterior()
        # Jeffreys prior (.5, .5) + 2 exceed + 2 not.
        assert beta.a == pytest.approx(2.5)
        assert beta.b == pytest.approx(2.5)

    def test_histogram(self):
        counts, edges = _posterior([0.1, 0.1, 0.9]).histogram(bins=10)
        assert counts.sum() == 3
        assert len(edges) == 11
        with pytest.raises(ValueError):
            _posterior([0.1]).histogram(bins=0)

    def test_repr_contains_summary(self):
        text = repr(_posterior([0.1, 0.2]))
        assert "mean=" in text and "golden=" in text
