"""Numerical-hazard containment: guard semantics, campaign accounting."""

import warnings

import numpy as np
import pytest

from repro.core.campaign import CampaignResult
from repro.core.hazard import HazardReport, NumericalHazardGuard
from repro.core.injector import BayesianFaultInjector
from repro.core.sweep import ProbabilitySweep
from repro.exec import ForwardSpec
from repro.train.metrics import classification_error


class TestGuardScore:
    def test_finite_logits_delegate_bit_exactly(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(40, 3))
        labels = rng.integers(0, 3, size=40)
        guard = NumericalHazardGuard()
        assert guard.score(logits, labels) == classification_error(logits, labels)
        assert guard.report().hazard_rows == 0
        assert guard.report().rows == 40

    def test_nonfinite_rows_quarantined(self):
        logits = np.array(
            [
                [1.0, 0.0],  # correct (label 0)
                [0.0, 1.0],  # misclassified (label 0)
                [np.nan, 0.0],  # hazard
                [np.inf, -np.inf],  # hazard
            ]
        )
        labels = np.array([0, 0, 0, 0])
        guard = NumericalHazardGuard()
        error = guard.score(logits, labels)
        report = guard.report()
        # 1 row misclassified + 2 hazard rows (always errors, but counted
        # deterministically rather than via NaN argmax) out of 4
        assert error == 0.75
        assert report.rows == 4
        assert report.hazard_rows == 2
        assert report.hazard_fraction == 0.5
        assert report.hazard_evaluations == 1
        # hazard ⊆ error: correct + error = 1
        assert 1 - error == pytest.approx(0.25)
        assert report.hazard_fraction <= error

    def test_fp_events_counted_not_warned(self):
        guard = NumericalHazardGuard()
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any RuntimeWarning would fail
            with guard.capture():
                np.float32(3e38) * np.float32(10.0)  # overflow
                np.float32(np.inf) - np.float32(np.inf)  # invalid
        report = guard.report()
        assert report.fp_overflow >= 1
        assert report.fp_invalid >= 1
        assert report.any_hazard

    def test_errstate_restored_after_capture(self):
        guard = NumericalHazardGuard()
        with guard.capture():
            pass
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            np.float32(3e38) * np.float32(10.0)
        assert any(issubclass(w.category, RuntimeWarning) for w in caught)


class TestHazardReport:
    def test_round_trip(self):
        report = HazardReport(
            evaluations=10, hazard_evaluations=2, rows=400, hazard_rows=17,
            fp_overflow=5, fp_invalid=3, fp_divide=1,
        )
        assert HazardReport.from_dict(report.to_dict()) == report

    def test_fractions(self):
        report = HazardReport(evaluations=4, hazard_evaluations=1, rows=100, hazard_rows=25)
        assert report.hazard_fraction == 0.25
        assert report.hazard_evaluation_fraction == 0.25
        assert HazardReport().hazard_fraction == 0.0


class TestCampaignHazard:
    @pytest.fixture(scope="class")
    def hazardous_campaign(self, trained_mlp, moons_eval):
        """A campaign at p high enough that exponent flips force NaN/inf logits."""
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=11)
        with warnings.catch_warnings():
            # the whole point: numerical blow-ups must not leak warnings
            warnings.simplefilter("error", RuntimeWarning)
            return injector.run(ForwardSpec(p=0.05, samples=60, chains=2))

    def test_high_p_campaign_reports_nonzero_hazard(self, hazardous_campaign):
        campaign = hazardous_campaign
        assert campaign.hazard is not None
        assert campaign.hazard.hazard_rows > 0
        assert campaign.hazard_fraction > 0.0
        assert campaign.hazard.fp_overflow + campaign.hazard.fp_invalid > 0

    def test_hazard_is_error_subset(self, hazardous_campaign):
        # every hazard row counts as an error, so the hazard fraction can
        # never exceed the mean error rate
        assert hazardous_campaign.hazard_fraction <= hazardous_campaign.mean_error + 1e-12
        assert hazardous_campaign.mean_error <= 1.0 + 1e-12

    def test_summary_row_surfaces_hazard(self, hazardous_campaign):
        row = hazardous_campaign.summary_row()
        assert "hazard_pct" in row
        assert row["hazard_pct"] > 0.0

    def test_result_round_trips_with_hazard(self, hazardous_campaign):
        restored = CampaignResult.from_dict(hazardous_campaign.to_dict())
        assert restored.hazard == hazardous_campaign.hazard
        assert np.array_equal(
            restored.posterior.samples, hazardous_campaign.posterior.samples
        )

    def test_benign_p_campaign_has_zero_hazard(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=3)
        campaign = injector.run(ForwardSpec(p=1e-6, samples=20, chains=2))
        assert campaign.hazard is not None
        assert campaign.hazard.evaluations > 0

    def test_sweep_table_has_hazard_column(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=5)
        sweep = ProbabilitySweep(
            injector, p_values=(1e-3, 5e-2), spec=ForwardSpec(p=1e-3, samples=20, chains=2)
        ).run()
        for row in sweep.table():
            assert "hazard_pct" in row
        assert sweep.table()[-1]["hazard_pct"] >= 0.0
