"""Two-regime (knee) fitting."""

import numpy as np
import pytest

from repro.core import fit_two_regimes


def _piecewise(p, knee_log, flat_slope, steep_slope, intercept, noise=0.0, seed=0):
    x = np.log10(p)
    left = intercept + flat_slope * (x - knee_log)
    right = intercept + steep_slope * (x - knee_log)
    y = np.where(x <= knee_log, left, right)
    if noise:
        y = y + np.random.default_rng(seed).normal(0, noise, size=y.shape)
    return y


class TestFit:
    def test_recovers_synthetic_knee(self):
        p = np.logspace(-5, -1, 17)
        y = _piecewise(p, knee_log=-3.0, flat_slope=0.001, steep_slope=0.2, intercept=0.05)
        fit = fit_two_regimes(p, y)
        assert fit.knee_log10_p == pytest.approx(-3.0, abs=0.3)
        assert fit.slope_steep == pytest.approx(0.2, rel=0.15)
        assert abs(fit.slope_flat) < 0.02
        assert fit.has_two_regimes

    def test_robust_to_noise(self):
        p = np.logspace(-5, -1, 17)
        y = _piecewise(p, -2.5, 0.0, 0.15, 0.05, noise=0.005, seed=1)
        fit = fit_two_regimes(p, y)
        assert fit.knee_log10_p == pytest.approx(-2.5, abs=0.6)
        assert fit.has_two_regimes

    def test_single_line_not_two_regimes(self):
        p = np.logspace(-5, -1, 15)
        y = 0.1 + 0.05 * np.log10(p)  # one slope everywhere
        fit = fit_two_regimes(p, y)
        assert not fit.has_two_regimes

    def test_flat_curve_not_two_regimes(self):
        p = np.logspace(-5, -1, 10)
        y = np.full(10, 0.08) + np.random.default_rng(2).normal(0, 1e-4, 10)
        fit = fit_two_regimes(p, y)
        assert not fit.has_two_regimes

    def test_predict_matches_fit_at_sweep_points(self):
        p = np.logspace(-5, -1, 17)
        y = _piecewise(p, -3.0, 0.0, 0.25, 0.1)
        fit = fit_two_regimes(p, y)
        assert np.allclose(fit.predict(p), y, atol=0.01)

    def test_knee_p_is_linear_value(self):
        p = np.logspace(-5, -1, 17)
        y = _piecewise(p, -3.0, 0.0, 0.25, 0.1)
        fit = fit_two_regimes(p, y)
        assert fit.knee_p == pytest.approx(10.0**fit.knee_log10_p)


class TestValidation:
    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_two_regimes(np.logspace(-3, -1, 4), np.zeros(4))

    def test_nonpositive_p(self):
        with pytest.raises(ValueError):
            fit_two_regimes(np.array([0.0, 0.1, 0.2, 0.3, 0.4]), np.zeros(5))

    def test_non_increasing_p(self):
        with pytest.raises(ValueError):
            fit_two_regimes(np.array([0.1, 0.1, 0.2, 0.3, 0.4]), np.zeros(5))

    def test_misaligned_arrays(self):
        with pytest.raises(ValueError):
            fit_two_regimes(np.logspace(-3, -1, 6), np.zeros(5))
