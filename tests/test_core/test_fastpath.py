"""The faulted-forward fast path must be bit-identical to the standard path.

Three layers under test: batched conv-net evaluation
(:class:`BatchedNetworkEvaluator`), the prefix-cached statistic inside
:class:`BayesianFaultInjector`, and the fast forward-campaign executor —
each compared at the bit level against the sequential
``apply_configuration`` + ``model(x)`` reference.
"""

import numpy as np
import pytest

from repro.core import BatchedNetworkEvaluator, BayesianFaultInjector
from repro.faults import (
    BernoulliBitFlipModel,
    FaultConfiguration,
    FaultSurface,
    TargetSpec,
    apply_configuration,
)
from repro.nn import LeNet
from repro.nn.module import Module
from repro.tensor.tensor import no_grad

EXPONENT_LANES = tuple(range(23, 31))
MANTISSA_LANES = tuple(range(0, 23))


def sequential_logits(injector, configuration):
    with apply_configuration(injector.model, configuration), no_grad(), np.errstate(all="ignore"):
        return injector.model(injector._x).data


def as_bits(array):
    return np.ascontiguousarray(array).view(np.uint8)


def assert_bit_identical(evaluator, injector, configurations):
    batched = evaluator.evaluate_logits(configurations)
    for i, configuration in enumerate(configurations):
        reference = sequential_logits(injector, configuration)
        assert batched[i].dtype == reference.dtype
        assert np.array_equal(as_bits(batched[i]), as_bits(reference)), (
            f"configuration {i} diverged from the sequential path"
        )


@pytest.fixture()
def lenet_injector(rng):
    model = LeNet(in_channels=3, image_size=12, rng=0).eval()
    x = rng.normal(size=(6, 3, 12, 12)).astype(np.float32)
    y = rng.integers(0, 10, size=6).astype(np.int64)
    return BayesianFaultInjector(
        model, x, y, spec=TargetSpec.weights_and_biases(), seed=3
    )


@pytest.fixture()
def resnet_injector(tiny_resnet, tiny_images):
    x, y = tiny_images
    return BayesianFaultInjector(
        tiny_resnet, x, y, spec=TargetSpec.single_layer("stages.2.0.conv1"), seed=3
    )


class TestBatchedBitIdentity:
    def test_empty_configurations_give_golden_logits(self, lenet_injector):
        evaluator = BatchedNetworkEvaluator(lenet_injector)
        empty = [FaultConfiguration.empty(lenet_injector.parameter_targets) for _ in range(3)]
        assert_bit_identical(evaluator, lenet_injector, empty)

    @pytest.mark.parametrize("p", [1e-7, 1e-3, 0.5])
    def test_lenet_all_layers(self, lenet_injector, p, rng):
        evaluator = BatchedNetworkEvaluator(lenet_injector)
        model = BernoulliBitFlipModel(p)
        configurations = [
            FaultConfiguration.sample(lenet_injector.parameter_targets, model, rng)
            for _ in range(4)
        ]
        assert_bit_identical(evaluator, lenet_injector, configurations)

    @pytest.mark.parametrize("p", [1e-3, 0.5])
    def test_resnet_mid_layer(self, resnet_injector, p, rng):
        evaluator = BatchedNetworkEvaluator(resnet_injector)
        model = BernoulliBitFlipModel(p)
        configurations = [
            FaultConfiguration.sample(resnet_injector.parameter_targets, model, rng)
            for _ in range(4)
        ]
        assert_bit_identical(evaluator, resnet_injector, configurations)

    @pytest.mark.parametrize(
        "lanes", [None, (31,), EXPONENT_LANES, MANTISSA_LANES], ids=["all", "sign", "exp", "mant"]
    )
    def test_lane_restrictions(self, lenet_injector, lanes, rng):
        evaluator = BatchedNetworkEvaluator(lenet_injector)
        model = BernoulliBitFlipModel(0.01, bits=lanes)
        configurations = [
            FaultConfiguration.sample(lenet_injector.parameter_targets, model, rng)
            for _ in range(3)
        ]
        assert_bit_identical(evaluator, lenet_injector, configurations)

    def test_no_fault_leakage_into_golden_model(self, lenet_injector, rng):
        """The sweep stacks faulted copies; the live parameters never change."""
        evaluator = BatchedNetworkEvaluator(lenet_injector)
        golden = {
            name: param.data.copy() for name, param in lenet_injector.parameter_targets
        }
        configurations = [
            FaultConfiguration.sample(
                lenet_injector.parameter_targets, BernoulliBitFlipModel(0.1), rng
            )
            for _ in range(4)
        ]
        evaluator.evaluate_logits(configurations)
        for name, param in lenet_injector.parameter_targets:
            assert np.array_equal(param.data.view(np.uint32), golden[name].view(np.uint32))

    def test_error_taxonomy_matches_guard(self, lenet_injector, rng):
        """evaluate() applies the hazard-aware scoring of the sequential path."""
        statistic = lenet_injector.make_statistic(None, rng)
        evaluator = BatchedNetworkEvaluator(lenet_injector)
        configurations = [
            FaultConfiguration.sample(
                lenet_injector.parameter_targets, BernoulliBitFlipModel(0.05), rng
            )
            for _ in range(6)
        ]
        batched = evaluator.evaluate(configurations)
        sequential = np.asarray([statistic(c) for c in configurations])
        assert np.array_equal(batched, sequential)


class TestFastCampaignIdentity:
    @pytest.mark.parametrize("p", [1e-7, 1e-3, 0.5])
    def test_forward_campaign_bit_identical(self, lenet_injector, p):
        slow = BayesianFaultInjector(
            lenet_injector.model, lenet_injector.inputs, lenet_injector.labels,
            spec=TargetSpec.weights_and_biases(), seed=3, fast=False,
        )
        fast = BayesianFaultInjector(
            lenet_injector.model, lenet_injector.inputs, lenet_injector.labels,
            spec=TargetSpec.weights_and_biases(), seed=3, fast=True,
        )
        rs = slow.forward_campaign(p, samples=20, chains=2)
        rf = fast.forward_campaign(p, samples=20, chains=2)
        for cs, cf in zip(rs.chains.chains, rf.chains.chains):
            assert np.array_equal(cs.values, cf.values)
            assert np.array_equal(cs.flips, cf.flips)
        assert rs.hazard.rows == rf.hazard.rows
        assert rs.hazard.hazard_rows == rf.hazard.hazard_rows
        assert rs.mean_error == rf.mean_error

    def test_mcmc_campaign_bit_identical(self, tiny_resnet, tiny_images):
        x, y = tiny_images
        spec = TargetSpec.single_layer("stages.3.1.conv2")
        slow = BayesianFaultInjector(tiny_resnet, x, y, spec=spec, seed=5, fast=False)
        fast = BayesianFaultInjector(tiny_resnet, x, y, spec=spec, seed=5)
        assert fast._prefix_forward() is not None and fast._prefix_forward().engaged
        rs = slow.mcmc_campaign(1e-3, chains=2, steps=10)
        rf = fast.mcmc_campaign(1e-3, chains=2, steps=10)
        for cs, cf in zip(rs.chains.chains, rf.chains.chains):
            assert np.array_equal(cs.values, cf.values)
        assert rs.chains.accepted_total() == rf.chains.accepted_total()

    def test_fast_false_disables_machinery(self, lenet_injector):
        slow = BayesianFaultInjector(
            lenet_injector.model, lenet_injector.inputs, lenet_injector.labels,
            spec=TargetSpec.weights_and_biases(), seed=3, fast=False,
        )
        assert slow._prefix_forward() is None
        assert slow._batched_evaluator() is None


class TestFastValidation:
    def test_fast_true_rejects_transient_surfaces(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError, match="parameter-only"):
            BayesianFaultInjector(
                trained_mlp, eval_x, eval_y,
                spec=TargetSpec(surfaces=(FaultSurface.ACTIVATIONS,)),
                fast=True,
            )

    def test_fast_true_raises_for_undecomposable_model(self, moons_eval):
        from repro.nn import MLP

        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.inner = MLP(2, (4,), 2, rng=0)

            def forward(self, x):
                return self.inner(x)

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(Custom().eval(), eval_x, eval_y, fast=True)
        with pytest.raises(ValueError, match="fast=True"):
            injector.forward_campaign(1e-3, samples=4, chains=1)

    def test_transient_surfaces_fall_back_to_standard_path(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y,
            spec=TargetSpec(surfaces=(FaultSurface.WEIGHTS, FaultSurface.ACTIVATIONS)),
        )
        assert injector._prefix_forward() is None
        assert injector._batched_evaluator() is None
        result = injector.forward_campaign(1e-3, samples=8, chains=2)
        assert result.chains.steps == 4


class TestCliFlag:
    @pytest.mark.parametrize(
        "argv,expected",
        [([], None), (["--fast"], True), (["--no-fast"], False)],
    )
    def test_campaign_fast_flag(self, argv, expected):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "golden.npz", "--workbench", "mlp-moons", *argv]
        )
        assert args.fast is expected

    def test_layerwise_and_sweep_expose_flag(self):
        from repro.cli import build_parser

        for command in ("layerwise", "sweep"):
            args = build_parser().parse_args(
                [command, "golden.npz", "--workbench", "mlp-moons", "--no-fast"]
            )
            assert args.fast is False
