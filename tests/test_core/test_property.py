"""Property-based tests for core analysis objects (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.baselines import wilson_interval
from repro.core import ErrorPosterior, fit_two_regimes
from repro.core.knee import truncate_saturated_tail

_error_samples = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=2, max_value=60),
    elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64),
)


class TestErrorPosteriorProperties:
    @given(_error_samples)
    @settings(max_examples=40, deadline=None)
    def test_mean_within_range(self, samples):
        posterior = ErrorPosterior(samples, golden_error=0.0)
        # 1-ULP tolerance: the mean of identical values can round past max.
        assert samples.min() - 1e-12 <= posterior.mean <= samples.max() + 1e-12

    @given(_error_samples)
    @settings(max_examples=40, deadline=None)
    def test_credible_interval_nested(self, samples):
        posterior = ErrorPosterior(samples, golden_error=0.0)
        lo50, hi50 = posterior.credible_interval(0.5)
        lo95, hi95 = posterior.credible_interval(0.95)
        assert lo95 <= lo50 <= hi50 <= hi95

    @given(_error_samples, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_exceedance_monotone_in_threshold(self, samples, threshold):
        posterior = ErrorPosterior(samples, golden_error=0.0)
        assert posterior.exceedance_probability(threshold) >= posterior.exceedance_probability(
            min(threshold + 0.1, 1.0)
        )

    @given(_error_samples)
    @settings(max_examples=40, deadline=None)
    def test_histogram_counts_all_samples(self, samples):
        posterior = ErrorPosterior(samples, golden_error=0.0)
        counts, _ = posterior.histogram(bins=7)
        assert counts.sum() == len(samples)


class TestWilsonProperties:
    @given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_contains_point_estimate(self, hits, trials):
        hits = min(hits, trials)
        lo, hi = wilson_interval(hits, trials)
        assert 0.0 <= lo <= hits / trials <= hi <= 1.0

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(min_value=10, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_width_shrinks_with_n(self, rate, trials):
        small = wilson_interval(int(rate * trials), trials)
        large = wilson_interval(int(rate * trials * 10), trials * 10)
        assert (large[1] - large[0]) <= (small[1] - small[0]) + 1e-9


class TestKneeProperties:
    @given(
        st.floats(min_value=-4.5, max_value=-1.5),
        st.floats(min_value=0.05, max_value=0.5),
        st.floats(min_value=0.0, max_value=0.01),
    )
    @settings(max_examples=25, deadline=None)
    def test_prediction_continuous_at_knee(self, knee_log, steep, flat):
        p = np.logspace(-5, -1, 15)
        x = np.log10(p)
        y = np.where(x <= knee_log, 0.05 + flat * (x - knee_log), 0.05 + steep * (x - knee_log))
        fit = fit_two_regimes(p, y)
        eps = 1e-6
        left = fit.predict(np.asarray([10 ** (fit.knee_log10_p - eps)]))[0]
        right = fit.predict(np.asarray([10 ** (fit.knee_log10_p + eps)]))[0]
        assert left == pytest.approx(right, abs=1e-4)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=5, max_value=15),
            elements=st.floats(min_value=0.0, max_value=1.0, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_truncation_keeps_prefix(self, errors):
        p = np.logspace(-5, -1, len(errors))
        kept_p, kept_e = truncate_saturated_tail(p, errors)
        assert len(kept_p) == len(kept_e) <= len(errors)
        assert np.array_equal(kept_e, errors[: len(kept_e)])
        assert len(kept_p) >= min(5, len(errors))
