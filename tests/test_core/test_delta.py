"""Delta-forward chain evaluation must be bit-identical to the standard path.

The :class:`~repro.core.delta.DeltaChainEvaluator` reuses cached segment
boundary activations between sequentially related proposals; every Chain
record, importance weight, and mixing diagnostic it produces must match
the standard per-proposal forward at the bit level, across architectures,
seeds, and hazard-quarantined regimes. Op-granular FP error event counts
(``fp_overflow`` etc.) are the one allowed difference — fewer ops run.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core import BayesianFaultInjector
from repro.core.delta import DeltaChainEvaluator
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec
from repro.mcmc import ParallelTemperingSampler, SingleBitToggle
from repro.mcmc.mixing import CompletenessCriterion
from repro.nn import LeNet, MLP
from repro.nn.module import Module
from repro.obs.profile import Profiler

SEEDS = (11, 23, 2019)
EXPONENT_LANES = tuple(range(23, 31))


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def lenet_setup():
    rng = np.random.default_rng(1234)
    model = LeNet(in_channels=3, image_size=12, rng=0).eval()
    x = rng.normal(size=(6, 3, 12, 12)).astype(np.float32)
    y = rng.integers(0, 10, size=6).astype(np.int64)
    return model, x, y, TargetSpec.weights_and_biases()


@pytest.fixture()
def setup(request, lenet_setup, trained_mlp, moons_eval, tiny_resnet, tiny_images):
    """(model, eval_x, eval_y, target_spec) per architecture id."""
    if request.param == "mlp":
        eval_x, eval_y = moons_eval
        return trained_mlp, eval_x, eval_y, TargetSpec.weights_and_biases()
    if request.param == "lenet":
        return lenet_setup
    x, y = tiny_images
    return tiny_resnet, x, y, TargetSpec.single_layer("stages.3.1.conv2")


def make_pair(setup, seed):
    """(standard, delta) injector pair over identical golden state."""
    model, x, y, spec = setup
    slow = BayesianFaultInjector(model, x, y, spec=spec, seed=seed, fast=False)
    fast = BayesianFaultInjector(model, x, y, spec=spec, seed=seed)
    assert fast._chain_engine(None) is not None, "delta engine failed to engage"
    return slow, fast


def assert_chains_identical(slow_result, fast_result):
    for cs, cf in zip(slow_result.chains.chains, fast_result.chains.chains):
        assert np.array_equal(cs.values, cf.values)
        assert np.array_equal(cs.flips, cf.flips)
        assert np.array_equal(cs.accepts, cf.accepts)
    assert slow_result.mean_error == fast_result.mean_error
    rs, rf = slow_result.hazard, fast_result.hazard
    assert rs.evaluations == rf.evaluations
    assert rs.hazard_evaluations == rf.hazard_evaluations
    assert rs.rows == rf.rows
    assert rs.hazard_rows == rf.hazard_rows
    report_s = CompletenessCriterion().assess(slow_result.chains)
    report_f = CompletenessCriterion().assess(fast_result.chains)
    assert report_s.r_hat == report_f.r_hat
    assert report_s.ess == report_f.ess


@pytest.mark.parametrize("setup", ["mlp", "lenet", "resnet"], indirect=True)
@pytest.mark.parametrize("seed", SEEDS)
class TestChainBitIdentity:
    def test_mcmc(self, setup, seed):
        slow, fast = make_pair(setup, seed)
        rs = slow.mcmc_campaign(1e-3, chains=2, steps=10)
        rf = fast.mcmc_campaign(1e-3, chains=2, steps=10)
        assert_chains_identical(rs, rf)

    def test_tempered(self, setup, seed):
        slow, fast = make_pair(setup, seed)
        rs, ws = slow.tempered_campaign(1e-3, beta=8.0, chains=2, steps=10)
        rf, wf = fast.tempered_campaign(1e-3, beta=8.0, chains=2, steps=10)
        assert_chains_identical(rs, rf)
        assert ws == wf  # self-normalised importance weights are bit-identical

    def test_tempering(self, setup, seed):
        slow, fast = make_pair(setup, seed)
        betas = (0.0, 10.0, 40.0)
        rs = slow.parallel_tempering_campaign(1e-3, chains=2, sweeps=10, betas=betas)
        rf = fast.parallel_tempering_campaign(1e-3, chains=2, sweeps=10, betas=betas)
        assert_chains_identical(rs, rf)


class TestHazardQuarantine:
    def test_overflow_regime_identical(self, lenet_setup):
        # Exponent-lane flips at high p overflow activations; the hazard
        # guard quarantines those rows on both paths identically.
        model, x, y, spec = lenet_setup
        fault_model = BernoulliBitFlipModel(0.05, bits=EXPONENT_LANES)
        slow = BayesianFaultInjector(model, x, y, spec=spec, seed=9, fast=False)
        fast = BayesianFaultInjector(model, x, y, spec=spec, seed=9)
        rs = slow.mcmc_campaign(0.05, chains=2, steps=12, fault_model=fault_model)
        rf = fast.mcmc_campaign(0.05, chains=2, steps=12, fault_model=fault_model)
        assert rs.hazard.hazard_rows > 0, "regime failed to trigger hazards"
        assert_chains_identical(rs, rf)


class TestTemperingSamplerParity:
    def test_rung_means_and_swap_acceptance(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=4
        )
        fault_model = BernoulliBitFlipModel(2e-3)
        rng = np.random.default_rng(77)
        statistic = injector.make_statistic(fault_model, rng)
        proposal = SingleBitToggle(injector.parameter_targets)

        def run(engine):
            sampler = ParallelTemperingSampler(
                injector.parameter_targets, fault_model, statistic, proposal,
                betas=(0.0, 10.0, 40.0), engine=engine,
            )
            return sampler.run(chains=2, sweeps=15, rng=5)

        rs = run(None)
        rf = run(injector._chain_engine(None))
        assert rs.rung_means == rf.rung_means
        assert rs.swap_acceptance == rf.swap_acceptance
        assert np.array_equal(rs.cold_chains.matrix(), rf.cold_chains.matrix())


class TestDeltaSession:
    @pytest.fixture()
    def engine(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2
        )
        return DeltaChainEvaluator(injector)

    def draw(self, engine, rng, p=1e-3):
        return FaultConfiguration.sample(
            engine.injector.parameter_targets, BernoulliBitFlipModel(p), rng
        )

    def test_cut_is_zero_before_first_commit(self, engine, rng):
        session = engine.session()
        assert session.cut_for(self.draw(engine, rng)) == 0

    def test_commit_without_stage_raises(self, engine):
        with pytest.raises(RuntimeError, match="staged"):
            engine.session().commit()

    def test_identical_candidate_reuses_cached_logits(self, engine, rng):
        session = engine.session()
        configuration = self.draw(engine, rng)
        first = engine.evaluate_round([session], [configuration])
        session.commit()
        assert session.cut_for(configuration) == engine.n_steps
        cached = session.logits()
        again = engine.evaluate_round([session], [configuration])
        assert again == first
        assert session._pending[1][engine.n_steps] is cached  # no recompute

    def test_rejected_candidate_leaves_state_untouched(self, engine, rng):
        session = engine.session()
        state = self.draw(engine, rng)
        engine.evaluate_round([session], [state])
        session.commit()
        other = self.draw(engine, rng, p=0.01)
        engine.evaluate_round([session], [other])  # evaluated but never committed
        assert session.state is state
        assert session.cut_for(state) == engine.n_steps

    def test_misaligned_round_rejected(self, engine, rng):
        with pytest.raises(ValueError, match="misaligned"):
            engine.evaluate_round([engine.session()], [])


class TestDeltaObservability:
    def test_profiler_phases_and_cache_counters(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        profiler = Profiler()
        obs.configure(metrics=True, profiler=profiler)
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=6
        )
        result, _ = injector.tempered_campaign(1e-3, beta=8.0, chains=2, steps=20)
        counters = result.metrics["counters"]
        assert counters["delta.cache.hit"] > 0
        assert counters["delta.cache.miss"] > 0  # at least the initial states
        assert counters["delta.segments.reused"] > 0
        phases = set(profiler.phases)
        assert any(name.endswith("delta.recompute") for name in phases)
        assert any(name.endswith("delta.reuse") for name in phases)

    def test_standard_path_records_no_delta_counters(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        obs.configure(metrics=True)
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=6, fast=False
        )
        result = injector.mcmc_campaign(1e-3, chains=2, steps=8)
        assert "delta.cache.hit" not in result.metrics["counters"]


class TestFastKnob:
    def test_spec_fast_false_disables_engine(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=1)
        assert injector._chain_engine(False) is None
        assert injector._chain_engine(None) is not None

    def test_spec_fast_true_overrides_injector_fast_false(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=1, fast=False)
        with pytest.raises(ValueError, match="fast=True"):
            injector._chain_engine(True)

    def test_fast_true_rejects_undecomposable_model(self, moons_eval):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.inner = MLP(2, (4,), 2, rng=0)

            def forward(self, x):
                return self.inner(x)

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(Custom().eval(), eval_x, eval_y, seed=1)
        with pytest.raises(ValueError, match="fast=True"):
            injector.mcmc_campaign(1e-3, chains=1, steps=4, fast=True)

    def test_cli_tempered_arm(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["campaign", "golden.npz", "--workbench", "mlp-moons",
             "--method", "tempered", "--beta", "12", "--no-fast"]
        )
        assert args.method == "tempered"
        assert args.beta == 12.0
        assert args.fast is False

        from repro.cli import _campaign_spec_from_args

        spec = _campaign_spec_from_args(args)
        assert spec.kind == "tempered"
        assert spec.beta == 12.0
        assert spec.fast is False


class TestStatisticMemoisation:
    """Satellite: a tempered target over a *different* callable must not
    re-run the forward pass the sampler already paid for."""

    def test_fingerprint_distinguishes_masks(self, trained_mlp, moons_eval, rng):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=3)
        model = BernoulliBitFlipModel(0.01)
        a = FaultConfiguration.sample(injector.parameter_targets, model, rng)
        b = FaultConfiguration.sample(injector.parameter_targets, model, rng)
        assert a.fingerprint() == a.fingerprint()
        assert a.fingerprint() != b.fingerprint()
        empty = FaultConfiguration.empty(injector.parameter_targets)
        assert empty.fingerprint() == FaultConfiguration.empty(
            injector.parameter_targets
        ).fingerprint()

    def test_distinct_callable_costs_one_evaluation(self, trained_mlp, moons_eval, rng):
        from repro.mcmc.metropolis import MetropolisHastingsSampler
        from repro.mcmc.targets import TemperedErrorTarget

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=3, fast=False)
        fault_model = BernoulliBitFlipModel(2e-3)
        statistic = injector.make_statistic(fault_model, rng)
        calls = {"n": 0}

        def counted(configuration):
            calls["n"] += 1
            return statistic(configuration)

        target = TemperedErrorTarget(fault_model, counted, beta=8.0)
        sampler = MetropolisHastingsSampler(
            target,
            SingleBitToggle(injector.parameter_targets),
            statistic,  # deliberately NOT the target's callable
            initial=lambda r: FaultConfiguration.sample(
                injector.parameter_targets, fault_model, r
            ),
        )
        steps = 12
        sampler.run(chains=1, steps=steps, rng=np.random.default_rng(0))
        # The sampler primes the target with its own evaluations; the
        # target's callable never runs (memo hits on every density query).
        assert calls["n"] == 0

    def test_same_callable_shortcut_still_engaged(self, trained_mlp, moons_eval, rng):
        from repro.mcmc.metropolis import MetropolisHastingsSampler
        from repro.mcmc.targets import TemperedErrorTarget

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=3, fast=False)
        fault_model = BernoulliBitFlipModel(2e-3)
        calls = {"n": 0}
        statistic = injector.make_statistic(fault_model, rng)

        def counted(configuration):
            calls["n"] += 1
            return statistic(configuration)

        target = TemperedErrorTarget(fault_model, counted, beta=8.0)
        sampler = MetropolisHastingsSampler(
            target,
            SingleBitToggle(injector.parameter_targets),
            counted,  # identical callable: identity shortcut, no memo needed
            initial=lambda r: FaultConfiguration.sample(
                injector.parameter_targets, fault_model, r
            ),
        )
        steps = 12
        sampler.run(chains=1, steps=steps, rng=np.random.default_rng(0))
        assert calls["n"] == steps + 1  # one per proposal plus the initial state

    def test_memo_bounded(self):
        from repro.mcmc.targets import TemperedErrorTarget

        target = TemperedErrorTarget(BernoulliBitFlipModel(0.1), lambda c: 0.0, beta=1.0)
        for index in range(TemperedErrorTarget._MEMO_LIMIT + 64):
            target._store(f"key{index}", float(index))
        assert len(target._memo) == TemperedErrorTarget._MEMO_LIMIT

    def test_memoize_off_calls_through(self):
        from repro.mcmc.targets import TemperedErrorTarget

        calls = {"n": 0}

        def stat(configuration):
            calls["n"] += 1
            return 0.25

        target = TemperedErrorTarget(BernoulliBitFlipModel(0.1), stat, beta=1.0, memoize=False)
        targets = []
        configuration = FaultConfiguration.empty(targets)
        target.prime(configuration, 0.25)  # no-op
        target.log_density(configuration)
        target.log_density(configuration)
        assert calls["n"] == 2
