"""Hamming-weight-stratified estimator (advantage #2)."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.core import BayesianFaultInjector, StratifiedErrorEstimator
from repro.faults import FaultSurface, TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestStrata:
    def test_weights_cover_binomial_mass(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        ks, weights = estimator.strata_for(1e-4)
        assert weights.sum() > 1 - 2 * estimator.mass_tolerance
        assert ks[0] == 0

    def test_stratum_zero_is_golden(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        values = estimator.conditional_error_samples(0)
        assert values.tolist() == [injector.golden_error]

    def test_conditional_samples_cached(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        first = estimator.conditional_error_samples(2)
        spent = estimator.evaluations_spent
        second = estimator.conditional_error_samples(2)
        assert np.array_equal(first, second)
        assert estimator.evaluations_spent == spent  # no new forward passes

    def test_invalid_k(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        with pytest.raises(ValueError):
            estimator.conditional_error_samples(-1)

    def test_invalid_p(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        with pytest.raises(ValueError):
            estimator.strata_for(0.0)

    def test_exact_flip_count_configurations(self, injector, rng):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=5)
        for k in (1, 3, 7):
            cfg = estimator.configuration_with_flips(k, rng)
            assert cfg.total_flips() == k

    def test_transient_surfaces_rejected(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        spec = TargetSpec(surfaces=frozenset({FaultSurface.WEIGHTS, FaultSurface.ACTIVATIONS}))
        inj = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=0)
        with pytest.raises(ValueError, match="parameter surfaces only"):
            StratifiedErrorEstimator(inj)


class TestEstimates:
    def test_agrees_with_forward_sampling(self, injector):
        p = 2e-3
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=40)
        stratified = estimator.estimate(p)
        forward = injector.forward_campaign(p, samples=600)
        assert stratified.mean_error == pytest.approx(forward.mean_error, abs=0.03)

    def test_variance_reduction_at_small_p(self, injector):
        """At p where most draws have zero flips, the stratified estimator's
        standard error beats plain MC at a comparable budget."""
        p = 5e-5
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=50)
        stratified = estimator.estimate(p)

        forward = injector.forward_campaign(p, samples=max(stratified.evaluations, 50))
        values = forward.posterior.samples
        mc_std = values.std(ddof=1) / np.sqrt(len(values))
        assert stratified.std_error < mc_std + 1e-9

    def test_sweep_reuses_conditionals(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=10)
        estimates = estimator.sweep(np.array([1e-5, 3e-5, 1e-4]))
        assert len(estimates) == 3
        # Later points mostly reuse strata: total spend well below 3x a full sweep.
        total_unique_strata = len(estimator._conditional_cache)
        assert estimator.evaluations_spent == total_unique_strata * 10

    def test_as_campaign_result(self, injector):
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=10)
        result = estimator.estimate(1e-3).as_campaign_result()
        assert result.method == "stratified"
        assert 0.0 <= result.mean_error <= 1.0

    def test_construction_validation(self, injector):
        with pytest.raises(ValueError):
            StratifiedErrorEstimator(injector, samples_per_stratum=0)
        with pytest.raises(ValueError):
            StratifiedErrorEstimator(injector, mass_tolerance=0.0)


class TestExactDecomposition:
    def test_matches_analytic_mixture_on_known_statistic(self, injector):
        """Check Σ P(K=k)·E[stat|k] against the analytic E[stat] when the
        statistic is the flip count itself (E = N·p)."""
        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=1)
        p = 1e-4
        ks, weights = estimator.strata_for(p)
        mean_from_strata = float((ks * weights).sum())
        analytic = estimator.total_bits * p
        residual = 1.0 - weights.sum()
        assert mean_from_strata == pytest.approx(analytic, rel=0.01 + residual)
