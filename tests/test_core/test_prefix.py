"""Clean-prefix activation caching: chain decomposition and bit-identity."""

import numpy as np
import pytest

from repro.core.prefix import PrefixCachedForward, forward_chain, owning_step, run_chain
from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, apply_configuration
from repro.faults.targets import resolve_parameter_targets
from repro.nn import LeNet, MLP
from repro.nn.module import Module
from repro.tensor.tensor import Tensor, no_grad


def logits_bits(tensor):
    return np.ascontiguousarray(tensor.data).view(np.uint8)


class TestForwardChain:
    def test_mlp_chain_matches_forward(self, trained_mlp, moons_eval):
        x = Tensor(moons_eval[0])
        steps = forward_chain(trained_mlp)
        assert steps is not None
        with no_grad():
            direct = trained_mlp(x)
            chained = run_chain(steps, x)
        assert np.array_equal(logits_bits(direct), logits_bits(chained))

    def test_resnet_chain_matches_forward(self, tiny_resnet, tiny_images):
        x = Tensor(tiny_images[0])
        steps = forward_chain(tiny_resnet)
        assert steps is not None
        with no_grad():
            direct = tiny_resnet(x)
            chained = run_chain(steps, x)
        assert np.array_equal(logits_bits(direct), logits_bits(chained))

    def test_lenet_chain_matches_forward(self, rng):
        model = LeNet(in_channels=1, image_size=12, rng=0).eval()
        x = Tensor(rng.normal(size=(4, 1, 12, 12)).astype(np.float32))
        steps = forward_chain(model)
        with no_grad():
            direct = model(x)
            chained = run_chain(steps, x)
        assert np.array_equal(logits_bits(direct), logits_bits(chained))

    def test_unsupported_model_returns_none(self):
        class Custom(Module):
            def forward(self, x):  # pragma: no cover - structure only
                return x

        assert forward_chain(Custom()) is None

    def test_owning_step(self, tiny_resnet):
        steps = forward_chain(tiny_resnet)
        fc_owner = owning_step(steps, "fc.weight")
        stem_owner = owning_step(steps, "stem.0.weight")
        assert fc_owner == len(steps) - 1
        assert stem_owner is not None and stem_owner < fc_owner
        assert owning_step(steps, "nonexistent.weight") is None


class TestPrefixCachedForward:
    @pytest.mark.parametrize("layer", ["layers.2"])
    @pytest.mark.parametrize("p", [1e-7, 1e-3, 0.5])
    def test_mlp_faulted_forward_bit_identical(self, trained_mlp, moons_eval, layer, p, rng):
        x = Tensor(moons_eval[0])
        targets = resolve_parameter_targets(trained_mlp, TargetSpec.single_layer(layer))
        cached = PrefixCachedForward(trained_mlp, x, [name for name, _ in targets])
        assert cached.engaged
        for _ in range(5):
            configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(p), rng)
            with apply_configuration(trained_mlp, configuration), no_grad(), np.errstate(all="ignore"):
                fast = cached.forward()
                standard = trained_mlp(x)
            assert np.array_equal(logits_bits(fast), logits_bits(standard))

    @pytest.mark.parametrize("layer", ["stages.3.1.conv2", "fc"])
    def test_resnet_faulted_forward_bit_identical(self, tiny_resnet, tiny_images, layer, rng):
        x = Tensor(tiny_images[0])
        targets = resolve_parameter_targets(tiny_resnet, TargetSpec.single_layer(layer))
        cached = PrefixCachedForward(tiny_resnet, x, [name for name, _ in targets])
        assert cached.engaged
        for p in (1e-3, 0.5):
            configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(p), rng)
            with apply_configuration(tiny_resnet, configuration), no_grad(), np.errstate(all="ignore"):
                fast = cached.forward()
                standard = tiny_resnet(x)
            assert np.array_equal(logits_bits(fast), logits_bits(standard))

    def test_first_layer_target_disengages(self, trained_mlp, moons_eval, tiny_resnet, tiny_images):
        # MLP: only the synthetic flatten precedes layers.0 — nothing to cache
        x = Tensor(moons_eval[0])
        targets = resolve_parameter_targets(trained_mlp, TargetSpec.single_layer("layers.0"))
        cached = PrefixCachedForward(trained_mlp, x, [name for name, _ in targets])
        assert not cached.engaged
        # ResNet: the stem conv is the very first chain step (cut = 0)
        targets = resolve_parameter_targets(tiny_resnet, TargetSpec.single_layer("stem.0"))
        cached = PrefixCachedForward(
            tiny_resnet, Tensor(tiny_images[0]), [name for name, _ in targets]
        )
        assert not cached.engaged

    def test_unsupported_model_disengages(self, moons_eval):
        class Custom(Module):
            def __init__(self):
                super().__init__()
                self.inner = MLP(2, (4,), 2, rng=0)

            def forward(self, x):
                return self.inner(x)

        model = Custom().eval()
        cached = PrefixCachedForward(model, Tensor(moons_eval[0]), ["inner.layers.0.weight"])
        assert not cached.engaged

    def test_prefix_activation_computed_once(self, trained_mlp, moons_eval):
        x = Tensor(moons_eval[0])
        targets = resolve_parameter_targets(trained_mlp, TargetSpec.single_layer("layers.2"))
        cached = PrefixCachedForward(trained_mlp, x, [name for name, _ in targets])
        first = cached.prefix_activation()
        assert cached.prefix_activation() is first


class TestChainEdgeCases:
    def test_flatten_step_is_synthetic(self, trained_mlp, moons_eval):
        steps = forward_chain(trained_mlp)
        assert steps[0].module is None and steps[0].name == "<flatten>"
        # The synthetic step owns no parameters and is skipped by ownership
        assert owning_step(steps, "layers.0.weight") == 1
        # Flattening an already-2D batch is the identity
        x = Tensor(moons_eval[0])
        assert steps[0](x) is x
        # and a >2D batch reshapes exactly like MLP.forward
        img = Tensor(np.arange(24, dtype=np.float32).reshape(2, 3, 4))
        assert steps[0](img).shape == (2, 12)

    def test_first_segment_fault_runs_with_zero_reuse(self, trained_mlp, moons_eval, rng):
        """A fault in the first real segment leaves nothing to cache, but the
        delta chain path must still run (from the golden input) bit-identically."""
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        spec = TargetSpec.single_layer("layers.0")
        slow = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=8, fast=False)
        fast = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=8)
        assert fast._prefix_forward() is None  # zero-reuse regime
        engine = fast._chain_engine(None)
        assert engine is not None
        # The static cut sits right at the first faultable segment (only the
        # synthetic flatten precedes it): no parameterized prefix to reuse.
        assert min(engine.owners.values()) == engine.base
        rs = slow.mcmc_campaign(1e-3, chains=2, steps=8)
        rf = fast.mcmc_campaign(1e-3, chains=2, steps=8)
        for cs, cf in zip(rs.chains.chains, rf.chains.chains):
            assert np.array_equal(cs.values, cf.values)
            assert np.array_equal(cs.accepts, cf.accepts)

    def test_cache_keyed_by_eval_batch(self, trained_mlp, moons_eval):
        """A different evaluation batch needs (and gets) a different cache."""
        eval_x, _ = moons_eval
        x1 = Tensor(eval_x)
        x2 = Tensor(eval_x[::-1].copy())
        targets = resolve_parameter_targets(trained_mlp, TargetSpec.single_layer("layers.2"))
        names = [name for name, _ in targets]
        cached1 = PrefixCachedForward(trained_mlp, x1, names)
        cached2 = PrefixCachedForward(trained_mlp, x2, names)
        assert cached1.engaged and cached2.engaged
        assert not np.array_equal(
            cached1.prefix_activation().data, cached2.prefix_activation().data
        )
        # Each instance reproduces the golden forward of *its own* batch
        with no_grad():
            for cached, x in ((cached1, x1), (cached2, x2)):
                assert np.array_equal(
                    logits_bits(cached.forward()), logits_bits(trained_mlp(x))
                )

    def test_batched_evaluator_prefix_tracks_injector_batch(self, trained_mlp, moons_eval):
        """Two injectors over different batches never share prefix activations."""
        from repro.core import BatchedNetworkEvaluator, BayesianFaultInjector

        eval_x, eval_y = moons_eval
        spec = TargetSpec.single_layer("layers.2")
        inj1 = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=8)
        inj2 = BayesianFaultInjector(
            trained_mlp, eval_x[::-1].copy(), eval_y[::-1].copy(), spec=spec, seed=8
        )
        ev1 = BatchedNetworkEvaluator(inj1)
        ev2 = BatchedNetworkEvaluator(inj2)
        empty = [FaultConfiguration.empty(inj1.parameter_targets)]
        with no_grad():
            golden1 = trained_mlp(inj1._x).data
            golden2 = trained_mlp(inj2._x).data
        assert np.array_equal(ev1.evaluate_logits(empty)[0], golden1)
        assert np.array_equal(ev2.evaluate_logits(empty)[0], golden2)
        assert not np.array_equal(golden1, golden2)
