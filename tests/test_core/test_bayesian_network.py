"""Explicit DBN vs implicit campaign equivalence."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector, MaskDistribution, build_fault_network
from repro.faults import BernoulliBitFlipModel, TargetSpec, resolve_parameter_targets


@pytest.fixture()
def setup(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    targets = resolve_parameter_targets(trained_mlp, TargetSpec.weights_and_biases())
    return trained_mlp, targets, eval_x, eval_y


class TestMaskDistribution:
    def test_sample_shape_and_dtype(self, rng):
        dist = MaskDistribution(BernoulliBitFlipModel(0.1), (3, 4))
        mask = dist.sample(rng)
        assert mask.shape == (3, 4)
        assert mask.dtype == np.uint32

    def test_size_argument_rejected(self, rng):
        with pytest.raises(ValueError):
            MaskDistribution(BernoulliBitFlipModel(0.1), (2,)).sample(rng, size=3)

    def test_log_prob_delegates(self):
        model = BernoulliBitFlipModel(0.2)
        dist = MaskDistribution(model, (5,))
        mask = np.zeros(5, dtype=np.uint32)
        assert float(dist.log_prob(mask)) == pytest.approx(model.log_prob_mask(mask))

    def test_shape_mismatch_rejected(self):
        dist = MaskDistribution(BernoulliBitFlipModel(0.2), (5,))
        with pytest.raises(ValueError):
            dist.log_prob(np.zeros(4, dtype=np.uint32))


class TestBuildFaultNetwork:
    def test_node_structure(self, setup):
        model, targets, eval_x, eval_y = setup
        net = build_fault_network(model, targets, BernoulliBitFlipModel(1e-3), eval_x, eval_y)
        # One RV + one deterministic per target, plus logits and error.
        assert len(net) == 2 * len(targets) + 2
        assert "logits" in net and "error" in net
        assert net.random_variables() == [f"e:{name}" for name, _ in targets]

    def test_zero_p_reproduces_golden_error(self, setup, rng):
        model, targets, eval_x, eval_y = setup
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        net = build_fault_network(model, targets, BernoulliBitFlipModel(0.0), eval_x, eval_y)
        trace = net.sample(rng)
        assert trace["error"] == pytest.approx(injector.golden_error)

    def test_sampling_restores_model_weights(self, setup, rng):
        model, targets, eval_x, eval_y = setup
        before = {n: p.data.copy() for n, p in targets}
        net = build_fault_network(model, targets, BernoulliBitFlipModel(0.05), eval_x, eval_y)
        net.sample(rng)
        for name, param in targets:
            assert np.array_equal(before[name], param.data)

    def test_explicit_and_implicit_sampling_agree(self, setup):
        """Ancestral DBN sampling and the injector's forward campaign target
        the same distribution: their error means must agree statistically."""
        model, targets, eval_x, eval_y = setup
        p = 1e-2
        injector = BayesianFaultInjector(
            model, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        campaign = injector.forward_campaign(p, samples=200)

        net = build_fault_network(model, targets, BernoulliBitFlipModel(p), eval_x, eval_y)
        rng = np.random.default_rng(0)
        dbn_errors = [net.sample(rng)["error"] for _ in range(200)]
        assert np.mean(dbn_errors) == pytest.approx(campaign.mean_error, abs=0.05)

    def test_clamped_mask_propagates(self, setup, rng):
        model, targets, eval_x, eval_y = setup
        net = build_fault_network(model, targets, BernoulliBitFlipModel(0.0), eval_x, eval_y)
        # Clamp a catastrophic mask on the first target: error should move.
        name, param = targets[0]
        hot = np.full(param.shape, np.uint32(1) << np.uint32(30), dtype=np.uint32)
        golden_trace = net.sample(rng)
        clamped_trace = net.sample(rng, given={f"e:{name}": hot})
        assert clamped_trace["error"] >= golden_trace["error"]

    def test_requires_targets(self, setup):
        model, _, eval_x, eval_y = setup
        with pytest.raises(ValueError):
            build_fault_network(model, [], BernoulliBitFlipModel(0.1), eval_x, eval_y)
