"""Outcome taxonomy and the one-call assessment."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector, OutcomeCampaign, assess_model
from repro.faults import FaultSurface, TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestOutcomeCampaign:
    def test_rates_partition_to_one(self, injector):
        campaign = OutcomeCampaign(injector).run(5e-3, samples=120)
        total = campaign.masked_rate + campaign.sdc_rate + campaign.due_rate
        assert total == pytest.approx(1.0)

    def test_tiny_p_mostly_masked(self, injector):
        campaign = OutcomeCampaign(injector).run(1e-6, samples=80)
        assert campaign.masked_rate > 0.9

    def test_large_p_mostly_damaging(self, injector):
        campaign = OutcomeCampaign(injector).run(5e-2, samples=80)
        assert campaign.masked_rate < 0.5

    def test_outcome_labels_consistent(self, injector):
        campaign = OutcomeCampaign(injector).run(1e-2, samples=60)
        for outcome in campaign.outcomes:
            if outcome.outcome == "masked":
                assert outcome.mismatch_fraction == 0.0
            if outcome.outcome == "due":
                assert outcome.due

    def test_rate_interval_brackets(self, injector):
        campaign = OutcomeCampaign(injector).run(5e-3, samples=100)
        lo, hi = campaign.rate_interval("sdc")
        assert lo <= campaign.sdc_rate <= hi

    def test_detectable_fraction_nan_when_all_masked(self, injector):
        campaign = OutcomeCampaign(injector).run(1e-9, samples=20)
        if campaign.masked_rate == 1.0:
            assert np.isnan(campaign.detectable_fraction_of_damage())

    def test_summary_keys(self, injector):
        summary = OutcomeCampaign(injector).run(1e-3, samples=30).summary()
        assert {"masked_rate", "sdc_rate", "due_rate", "mean_error"} <= set(summary)

    def test_requires_run_before_rates(self, injector):
        campaign = OutcomeCampaign(injector)
        with pytest.raises(RuntimeError):
            _ = campaign.masked_rate

    def test_transient_surfaces_rejected(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y,
            spec=TargetSpec(surfaces=frozenset({FaultSurface.WEIGHTS, FaultSurface.INPUTS})),
            seed=0,
        )
        with pytest.raises(ValueError, match="parameter surfaces"):
            OutcomeCampaign(injector)

    def test_validation(self, injector):
        with pytest.raises(ValueError):
            OutcomeCampaign(injector).run(1e-3, samples=0)


class TestAssessment:
    @pytest.fixture(scope="class")
    def assessment(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        return assess_model(
            trained_mlp,
            eval_x,
            eval_y,
            seed=0,
            samples_per_point=60,
            outcome_samples=80,
            layerwise_samples=20,
        )

    def test_sweep_covers_grid(self, assessment):
        assert len(assessment.sweep_table) == 9

    def test_knee_within_grid(self, assessment):
        assert 1e-5 <= assessment.knee_p <= 1e-1

    def test_outcome_summary_present(self, assessment):
        assert assessment.outcome_summary["samples"] == 80

    def test_field_sensitivity_ordering(self, assessment):
        # Exponent impact dwarfs mantissa (or is infinite via catastrophic sites).
        assert (
            assessment.field_sensitivity["exponent"]
            > assessment.field_sensitivity["mantissa"]
        )

    def test_layerwise_included_for_multilayer_model(self, assessment):
        assert len(assessment.layer_table) == 2  # the MLP's two layers
        assert "spearman_rho" in assessment.layer_depth_correlation

    def test_markdown_renders(self, assessment):
        text = assessment.to_markdown()
        assert "# Fault-tolerance assessment" in text
        assert "Outcome taxonomy" in text
        assert "Per-layer vulnerability" in text
        assert f"{assessment.golden_error:.2%}" in text

    def test_layerwise_can_be_skipped(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        assessment = assess_model(
            trained_mlp, eval_x, eval_y, seed=0,
            samples_per_point=30, outcome_samples=30, include_layerwise=False,
        )
        assert assessment.layer_table == []
        assert "Per-layer" not in assessment.to_markdown()
