"""Experiment drivers: sweeps (Figs. 2/4), layerwise (Fig. 3), boundary (Fig. 1③)."""

import numpy as np
import pytest

from repro.core import (
    BayesianFaultInjector,
    DecisionBoundaryAnalysis,
    LayerwiseCampaign,
    ProbabilitySweep,
)
from repro.core.layerwise import parameterised_layers
from repro.faults import BernoulliBitFlipModel, TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestProbabilitySweep:
    def test_default_grid_is_paper_range(self, injector):
        sweep = ProbabilitySweep(injector)
        assert sweep.p_values[0] == pytest.approx(1e-5)
        assert sweep.p_values[-1] == pytest.approx(1e-1)

    def test_run_produces_point_per_p(self, injector):
        sweep = ProbabilitySweep(
            injector, p_values=tuple(np.logspace(-4, -1, 5)), samples=40
        ).run()
        assert len(sweep.points) == 5
        assert len(sweep.table()) == 5

    def test_two_regimes_found_on_real_sweep(self, injector):
        sweep = ProbabilitySweep(
            injector, p_values=tuple(np.logspace(-5, -1, 9)), samples=80
        ).run()
        fit = sweep.fit_regimes()
        assert fit.has_two_regimes  # the paper's finding F2

    def test_stratified_method(self, injector):
        sweep = ProbabilitySweep(
            injector, p_values=tuple(np.logspace(-5, -3, 5)), samples=40, method="stratified"
        ).run()
        assert all(pt.campaign.method == "stratified" for pt in sweep.points)

    def test_mcmc_method(self, injector):
        sweep = ProbabilitySweep(
            injector, p_values=(1e-3, 1e-2, 1e-1), samples=40, method="mcmc"
        ).run()
        assert all(pt.campaign.completeness is not None for pt in sweep.points)

    def test_accessors_before_run_raise(self, injector):
        sweep = ProbabilitySweep(injector)
        with pytest.raises(RuntimeError):
            sweep.errors()

    def test_validation(self, injector):
        with pytest.raises(ValueError):
            ProbabilitySweep(injector, p_values=(0.1, 0.01))  # not increasing
        with pytest.raises(ValueError):
            ProbabilitySweep(injector, p_values=(0.0, 0.1))
        with pytest.raises(ValueError):
            ProbabilitySweep(injector, method="exact")


class TestLayerwise:
    def test_parameterised_layers_of_mlp(self, trained_mlp):
        assert parameterised_layers(trained_mlp) == ["layers.0", "layers.2"]

    def test_campaign_per_layer(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        campaign = LayerwiseCampaign(
            trained_mlp, eval_x, eval_y, p=1e-2, samples=40, seed=0
        ).run()
        assert [r.layer for r in campaign.results] == ["layers.0", "layers.2"]
        assert all(r.parameter_count > 0 for r in campaign.results)

    def test_depth_correlation_keys(self, tiny_resnet, tiny_images):
        x, y = tiny_images
        layers = tuple(parameterised_layers(tiny_resnet)[:5])
        campaign = LayerwiseCampaign(
            tiny_resnet, x, y, p=1e-3, samples=10, layers=layers, seed=0
        ).run()
        stats = campaign.depth_correlation()
        assert set(stats) == {"spearman_rho", "spearman_p", "kendall_tau", "kendall_p"}
        assert -1 <= stats["spearman_rho"] <= 1

    def test_results_required_before_stats(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        campaign = LayerwiseCampaign(trained_mlp, eval_x, eval_y, seed=0)
        with pytest.raises(RuntimeError):
            campaign.depth_correlation()

    def test_validation(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError):
            LayerwiseCampaign(trained_mlp, eval_x, eval_y, p=0.0)


class TestBoundary:
    def test_map_shapes(self, trained_mlp):
        analysis = DecisionBoundaryAnalysis(
            trained_mlp, bounds=(-1.5, 2.5, -1.2, 1.7), resolution=20,
            fault_model=BernoulliBitFlipModel(1e-3), seed=0,
        )
        bmap = analysis.run(samples=20)
        assert bmap.flip_probability.shape == (20, 20)
        assert bmap.golden_prediction.shape == (20, 20)
        assert np.all((bmap.flip_probability >= 0) & (bmap.flip_probability <= 1))

    def test_boundary_distance_zero_on_boundary_cells(self, trained_mlp):
        analysis = DecisionBoundaryAnalysis(
            trained_mlp, bounds=(-1.5, 2.5, -1.2, 1.7), resolution=24, seed=0
        )
        bmap = analysis.run(samples=5)
        assert bmap.boundary_distance.min() == 0.0
        assert bmap.boundary_distance.max() > 1.0

    def test_errors_concentrate_near_boundary(self, trained_mlp):
        """Finding F1: flip probability decays with boundary distance."""
        analysis = DecisionBoundaryAnalysis(
            trained_mlp, bounds=(-1.5, 2.5, -1.2, 1.7), resolution=30,
            fault_model=BernoulliBitFlipModel(1e-3), seed=0,
        )
        bmap = analysis.run(samples=60)
        corr = bmap.distance_correlation()
        assert corr["spearman_rho"] < -0.1
        assert corr["spearman_p"] < 0.01
        bands = bmap.band_summary(4)
        assert bands[0]["mean_flip_probability"] > bands[-1]["mean_flip_probability"]

    def test_log_flip_probability_finite(self, trained_mlp):
        analysis = DecisionBoundaryAnalysis(
            trained_mlp, bounds=(-1.5, 2.5, -1.2, 1.7), resolution=16, seed=0
        )
        bmap = analysis.run(samples=10)
        assert np.isfinite(bmap.log_flip_probability()).all()

    def test_validation(self, trained_mlp):
        with pytest.raises(ValueError):
            DecisionBoundaryAnalysis(trained_mlp, bounds=(1, 0, 0, 1))
        with pytest.raises(ValueError):
            DecisionBoundaryAnalysis(trained_mlp, bounds=(0, 1, 0, 1), resolution=2)
        analysis = DecisionBoundaryAnalysis(trained_mlp, bounds=(0, 1, 0, 1), resolution=8, seed=0)
        with pytest.raises(ValueError):
            analysis.run(samples=0)
        with pytest.raises(ValueError):
            bands = analysis.run(samples=2).band_summary(1)
