"""Command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import WORKBENCHES, build_parser, main


@pytest.fixture(scope="module")
def golden_checkpoint(tmp_path_factory):
    """A quickly trained mlp-moons checkpoint shared by the CLI tests."""
    path = str(tmp_path_factory.mktemp("cli") / "golden.npz")
    code = main(
        ["train", "mlp-moons", "--out", path, "--epochs", "25", "--train-size", "500"]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(["train", "mlp-moons", "--out", "x.npz"])
        assert args.workbench == "mlp-moons"
        assert args.out == "x.npz"

    def test_unknown_workbench_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "vgg", "--out", "x.npz"])

    def test_all_workbenches_buildable(self):
        for name, workbench in WORKBENCHES.items():
            model = workbench.build_model()
            assert model.num_parameters() > 0, name


class TestTrain(object):
    def test_writes_checkpoint(self, golden_checkpoint):
        assert os.path.exists(golden_checkpoint)
        archive = np.load(golden_checkpoint)
        assert "__meta__/accuracy" in archive.files
        assert float(archive["__meta__/accuracy"]) > 0.9


class TestCampaign:
    def test_forward_campaign_runs(self, golden_checkpoint, capsys):
        code = main(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "1e-3", "--samples", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "golden error" in out
        assert "mean_error_pct" in out

    def test_mcmc_campaign_reports_completeness(self, golden_checkpoint, capsys):
        code = main(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "1e-2", "--samples", "80", "--method", "mcmc",
            ]
        )
        assert code == 0
        assert "R-hat" in capsys.readouterr().out

    def test_tempering_campaign(self, golden_checkpoint, capsys):
        code = main(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "1e-2", "--samples", "40", "--method", "tempering",
            ]
        )
        assert code == 0
        assert "tempering" in capsys.readouterr().out


class TestSweepLayerwiseBoundary:
    def test_sweep_prints_table_and_knee(self, golden_checkpoint, capsys):
        code = main(
            [
                "sweep", golden_checkpoint, "--workbench", "mlp-moons",
                "--points", "6", "--samples", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "error_pct" in out
        assert "knee" in out

    def test_sweep_parallel_matches_sequential_output(self, golden_checkpoint, capsys):
        argv = [
            "sweep", golden_checkpoint, "--workbench", "mlp-moons",
            "--points", "5", "--samples", "24",
        ]
        assert main(argv) == 0
        sequential_out = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        parallel_out = capsys.readouterr().out

        def error_column(text):
            rows = [line for line in text.splitlines() if line.strip() and line[0].isdigit()]
            return [row.split()[1] for row in rows]

        assert error_column(parallel_out) == error_column(sequential_out)

    def test_layerwise(self, golden_checkpoint, capsys):
        code = main(
            [
                "layerwise", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "5e-3", "--samples", "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "layers.0" in out and "layers.2" in out

    def test_boundary(self, golden_checkpoint, capsys):
        code = main(
            [
                "boundary", golden_checkpoint, "--workbench", "mlp-moons",
                "--resolution", "16", "--samples", "20",
            ]
        )
        assert code == 0
        assert "Spearman" in capsys.readouterr().out

    def test_assess_writes_report(self, golden_checkpoint, capsys, tmp_path):
        out = str(tmp_path / "report.md")
        code = main(
            [
                "assess", golden_checkpoint, "--workbench", "mlp-moons",
                "--samples", "30", "--out", out,
            ]
        )
        assert code == 0
        assert "Fault-tolerance assessment" in capsys.readouterr().out
        with open(out) as handle:
            assert "Outcome taxonomy" in handle.read()

    def test_boundary_rejected_for_image_workbench(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="no 2-D input window"):
            main(
                [
                    "boundary", golden_checkpoint, "--workbench", "mlp-images",
                ]
            )


class TestDurableCampaigns:
    """--journal/--resume plumbing and its argument validation."""

    def _sweep_argv(self, checkpoint, *extra):
        return [
            "sweep", checkpoint, "--workbench", "mlp-moons",
            "--points", "5", "--samples", "20", *extra,
        ]

    def test_resume_requires_journal_flag(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="--resume requires --journal"):
            main(self._sweep_argv(golden_checkpoint, "--resume"))

    def test_resume_requires_existing_journal(self, golden_checkpoint, tmp_path):
        missing = str(tmp_path / "absent.jsonl")
        with pytest.raises(SystemExit, match="run once without --resume"):
            main(self._sweep_argv(golden_checkpoint, "--journal", missing, "--resume"))

    def test_fresh_run_refuses_existing_journal(self, golden_checkpoint, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert main(self._sweep_argv(golden_checkpoint, "--journal", journal)) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="pass --resume"):
            main(self._sweep_argv(golden_checkpoint, "--journal", journal))

    def test_fingerprint_mismatch_rejected(self, golden_checkpoint, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        assert main(self._sweep_argv(golden_checkpoint, "--journal", journal)) == 0
        capsys.readouterr()
        # different seed ⇒ different campaign fingerprint ⇒ loud refusal
        with pytest.raises(SystemExit, match="different campaign"):
            main(
                self._sweep_argv(
                    golden_checkpoint, "--journal", journal, "--resume", "--seed", "7"
                )
            )

    def test_invalid_worker_count_rejected(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="--workers must be >= 1"):
            main(self._sweep_argv(golden_checkpoint, "--workers", "0"))

    def test_resumed_sweep_matches_uninterrupted_output(self, golden_checkpoint, tmp_path, capsys):
        journal = str(tmp_path / "sweep.jsonl")
        argv = self._sweep_argv(golden_checkpoint)
        assert main(argv) == 0
        uninterrupted = capsys.readouterr().out
        assert main(argv + ["--journal", journal]) == 0
        capsys.readouterr()
        assert main(argv + ["--journal", journal, "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "restored" in resumed

        def error_column(text):
            rows = [line for line in text.splitlines() if line.strip() and line[0].isdigit()]
            return [row.split()[1] for row in rows]

        assert error_column(resumed) == error_column(uninterrupted)

    def test_campaign_command_journals(self, golden_checkpoint, tmp_path, capsys):
        journal = str(tmp_path / "campaign.jsonl")
        argv = [
            "campaign", golden_checkpoint, "--workbench", "mlp-moons",
            "--p", "1e-3", "--samples", "30", "--journal", journal,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "journal: 1 campaign(s) recorded" in first
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "1 campaign(s) restored" in second

        def error_line(text):
            return [line for line in text.splitlines() if "mean_error_pct" in line]

        assert os.path.exists(journal)

    def test_layerwise_journal_resume(self, golden_checkpoint, tmp_path, capsys):
        journal = str(tmp_path / "layers.jsonl")
        argv = [
            "layerwise", golden_checkpoint, "--workbench", "mlp-moons",
            "--p", "5e-3", "--samples", "20", "--journal", journal,
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out

        def error_column(text):
            rows = [line for line in text.splitlines() if line.strip() and line[0].isdigit()]
            return [row.split()[2] for row in rows]

        assert error_column(first) == error_column(second)


class TestJournalPathValidation:
    """Satellite: bad --journal paths fail fast, not as OSError mid-campaign."""

    def _argv(self, checkpoint, journal):
        return [
            "campaign", checkpoint, "--workbench", "mlp-moons",
            "--p", "1e-3", "--samples", "20", "--journal", journal,
        ]

    def test_nonexistent_parent_directory_fails_fast(self, golden_checkpoint, tmp_path):
        journal = str(tmp_path / "no" / "such" / "dir" / "j.jsonl")
        with pytest.raises(SystemExit, match="parent directory .* does not exist"):
            main(self._argv(golden_checkpoint, journal))

    def test_readonly_journal_fails_fast(self, golden_checkpoint, tmp_path):
        journal = tmp_path / "frozen.jsonl"
        journal.write_text('{"journal": "bdlfi-campaign-journal", "version": 1}\n')
        journal.chmod(0o444)
        if os.access(str(journal), os.W_OK):  # running as root: not enforceable
            pytest.skip("file permissions not enforced for this user")
        try:
            with pytest.raises(SystemExit, match="read-only"):
                main(self._argv(golden_checkpoint, str(journal)) + ["--resume"])
        finally:
            journal.chmod(0o644)

    def test_readonly_directory_fails_fast(self, golden_checkpoint, tmp_path):
        locked = tmp_path / "locked"
        locked.mkdir()
        locked.chmod(0o555)
        if os.access(str(locked), os.W_OK):  # running as root: not enforceable
            locked.chmod(0o755)
            pytest.skip("directory permissions not enforced for this user")
        try:
            with pytest.raises(SystemExit, match="not writable"):
                main(self._argv(golden_checkpoint, str(locked / "j.jsonl")))
        finally:
            locked.chmod(0o755)

    def test_directory_as_journal_fails_fast(self, golden_checkpoint, tmp_path):
        with pytest.raises(SystemExit, match="is a directory"):
            main(self._argv(golden_checkpoint, str(tmp_path)))


class TestResilienceFlags:
    """--chaos / --on-failure / --max-attempts / --backoff plumbing."""

    def test_chaos_flags_parse(self, golden_checkpoint):
        args = build_parser().parse_args(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--chaos", "worker.sigkill=0.3,journal.torn_tail=0.5:2",
                "--chaos-seed", "7", "--on-failure", "degrade",
                "--max-attempts", "5", "--backoff", "0.5",
            ]
        )
        assert args.chaos == "worker.sigkill=0.3,journal.torn_tail=0.5:2"
        assert args.chaos_seed == 7
        assert args.on_failure == "degrade"
        assert args.max_attempts == 5
        assert args.backoff == 0.5

    def test_bad_chaos_spec_rejected(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="--chaos"):
            main(
                [
                    "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                    "--samples", "20", "--chaos", "worker.meteor=1.0",
                ]
            )

    def test_bad_max_attempts_rejected(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="--max-attempts"):
            main(
                [
                    "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                    "--samples", "20", "--chaos", "pipe.drop=0.1", "--max-attempts", "0",
                ]
            )

    def test_chaos_campaign_matches_clean_output(self, golden_checkpoint, capsys):
        """A chaos run that completes prints the same numbers as a clean one."""
        argv = [
            "campaign", golden_checkpoint, "--workbench", "mlp-moons",
            "--p", "1e-3", "--samples", "30",
        ]
        assert main(argv) == 0
        clean = capsys.readouterr().out
        assert main(
            argv + ["--workers", "2", "--chaos", "pipe.drop=1.0:1", "--max-attempts", "3"]
        ) == 0
        chaotic = capsys.readouterr().out

        def error_cells(text):
            # numeric table rows minus the wall-clock columns (duration,
            # evals/s) — bit-identity is about the math, not the clock
            rows = [line.split() for line in text.splitlines()
                    if line.strip() and line[0].isdigit()]
            return [row[:8] for row in rows]

        assert error_cells(clean) == error_cells(chaotic)
        assert "retries" in chaotic  # the drop really happened and was retried

    def test_degraded_sweep_reports_accounting(self, golden_checkpoint, capsys):
        argv = [
            "sweep", golden_checkpoint, "--workbench", "mlp-moons",
            "--points", "2", "--samples", "12", "--workers", "2",
            "--chaos", "worker.sigkill=1.0", "--on-failure", "degrade",
            "--max-attempts", "2",
        ]
        assert main(argv) == 1  # nothing completed: non-zero exit
        out = capsys.readouterr().out
        assert "DEGRADED result: 0/2 points completed" in out
        assert "no sweep points completed" in out


class TestObservabilityFlags:
    def test_campaign_writes_trace_metrics_and_progress(
        self, golden_checkpoint, tmp_path, capsys
    ):
        import json

        from repro.utils.persist import read_checked_json

        trace = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        events = str(tmp_path / "events.jsonl")
        code = main(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "1e-2", "--samples", "60", "--method", "adaptive",
                "--trace", trace, "--metrics", metrics, "--progress", events,
            ]
        )
        assert code == 0
        # trace: plain Chrome-trace JSON (no checksum wrapper) with campaign spans
        with open(trace, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert "__checksum__" not in payload
        names = {event["name"] for event in payload["traceEvents"]}
        assert "campaign.adaptive" in names
        # metrics: checksummed digest whose counters match the printed table
        snapshot = read_checked_json(metrics)
        assert snapshot["counters"]["campaigns"] == 1
        assert snapshot["counters"]["evaluations"] > 0
        # progress: machine-tailable JSONL of live mixing diagnostics
        with open(events, encoding="utf-8") as handle:
            kinds = [json.loads(line)["kind"] for line in handle]
        assert "adaptive.progress" in kinds

    def test_sweep_parallel_with_metrics(self, golden_checkpoint, tmp_path, capsys):
        from repro.utils.persist import read_checked_json

        metrics = str(tmp_path / "metrics.json")
        code = main(
            [
                "sweep", golden_checkpoint, "--workbench", "mlp-moons",
                "--points", "5", "--samples", "20", "--workers", "2",
                "--metrics", metrics,
            ]
        )
        assert code == 0
        snapshot = read_checked_json(metrics)
        assert snapshot["counters"]["campaigns"] == 5
        assert snapshot["counters"]["executor.tasks"] == 5
        assert "executor:" in capsys.readouterr().out

    def test_progress_flag_defaults_to_stderr(self, golden_checkpoint, capsys):
        code = main(
            [
                "campaign", golden_checkpoint, "--workbench", "mlp-moons",
                "--p", "1e-2", "--samples", "60", "--method", "adaptive",
                "--progress",
            ]
        )
        assert code == 0
        assert "[adaptive.progress]" in capsys.readouterr().err


class TestStoppingMonitorFlag:
    """--target-halfwidth: advisory convergence reporting, passivity."""

    def test_flags_parse_on_campaign_commands(self):
        for command in ("campaign", "sweep", "layerwise"):
            args = build_parser().parse_args(
                [command, "x.npz", "--workbench", "mlp-moons",
                 "--target-halfwidth", "0.05", "--target-mass", "0.9"]
            )
            assert args.target_halfwidth == 0.05
            assert args.target_mass == 0.9

    def test_invalid_target_rejected_before_any_work(self, golden_checkpoint):
        with pytest.raises(SystemExit, match="target-halfwidth"):
            main(
                ["campaign", golden_checkpoint, "--workbench", "mlp-moons",
                 "--p", "1e-2", "--samples", "12", "--target-halfwidth", "0.9"]
            )

    def test_campaign_prints_the_stopping_report(self, golden_checkpoint, capsys):
        code = main(
            ["campaign", golden_checkpoint, "--workbench", "mlp-moons",
             "--p", "1e-2", "--samples", "40", "--target-halfwidth", "0.4"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "stopping monitor: target halfwidth 0.4 at 95% credible mass" in err
        assert "crossed at task 0" in err

    def test_sweep_reports_one_stratum_per_point(self, golden_checkpoint, capsys):
        code = main(
            ["sweep", golden_checkpoint, "--workbench", "mlp-moons",
             "--points", "5", "--samples", "20", "--target-halfwidth", "0.45"]
        )
        assert code == 0
        err = capsys.readouterr().err
        strata = [line for line in err.splitlines() if "halfwidth" in line and "p=" in line]
        assert len(strata) == 5

    def test_monitored_campaign_output_identical_to_bare(self, golden_checkpoint, capsys):
        argv = [
            "campaign", golden_checkpoint, "--workbench", "mlp-moons",
            "--p", "1e-3", "--samples", "30",
        ]
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--target-halfwidth", "0.1", "--target-mass", "0.9"]) == 0
        monitored = capsys.readouterr().out

        def result_rows(text):
            # statistical columns only — duration/throughput vary run to run
            rows = [line.split()[:6] for line in text.splitlines()
                    if line.strip() and line.split()[0] == "0.001"]
            golden = [line for line in text.splitlines() if line.startswith("golden error:")]
            return rows + [golden]

        assert result_rows(monitored) == result_rows(bare)


class TestProfileFlag:
    """--profile: hot-spot table, collapsed-stack export, composition."""

    def _campaign_argv(self, checkpoint, *extra):
        return [
            "campaign", checkpoint, "--workbench", "mlp-moons",
            "--p", "1e-3", "--samples", "25", *extra,
        ]

    def test_profile_prints_hotspot_table(self, golden_checkpoint, capsys):
        assert main(self._campaign_argv(golden_checkpoint, "--profile")) == 0
        err = capsys.readouterr().err
        assert "self_s" in err and "cum_s" in err
        assert "campaign.forward" in err  # phase rows
        assert "forward.eval" in err
        assert "matmul" in err  # op rows

    def test_profile_writes_collapsed_stacks(self, golden_checkpoint, tmp_path, capsys):
        collapsed = str(tmp_path / "profile.collapsed")
        argv = self._campaign_argv(golden_checkpoint, "--profile", collapsed)
        assert main(argv) == 0
        assert "open in speedscope" in capsys.readouterr().err
        with open(collapsed, encoding="utf-8") as handle:
            lines = [line.strip() for line in handle if line.strip()]
        assert lines
        for line in lines:  # Brendan Gregg collapsed format: frames <micros>
            frames, micros = line.rsplit(" ", 1)
            assert frames and micros.isdigit()
        assert any(line.startswith("campaign.forward") for line in lines)

    def test_profile_output_identical_to_bare_run(self, golden_checkpoint, capsys):
        argv = self._campaign_argv(golden_checkpoint)
        assert main(argv) == 0
        bare = capsys.readouterr().out
        assert main(argv + ["--profile"]) == 0
        profiled = capsys.readouterr().out

        def result_rows(text):
            # statistical columns only — duration/throughput vary run to run
            rows = [line.split()[:6] for line in text.splitlines()
                    if line.strip() and line.split()[0] == "0.001"]
            golden = [line for line in text.splitlines() if line.startswith("golden error:")]
            return rows + [golden]

        assert result_rows(profiled) == result_rows(bare)

    def test_profile_composes_with_metrics(self, golden_checkpoint, tmp_path, capsys):
        from repro.utils.persist import read_checked_json

        metrics = str(tmp_path / "metrics.json")
        argv = self._campaign_argv(
            golden_checkpoint, "--profile", "--metrics", metrics, "--workers", "2"
        )
        assert main(argv) == 0
        capsys.readouterr()
        digest = read_checked_json(metrics)
        counters = digest["counters"]
        op_counters = {name for name in counters if name.startswith("profile.op.")}
        assert any(name.endswith(".calls") for name in op_counters)
        assert any(name.endswith(".flops") for name in op_counters)
        assert "profile.layer.forward_s" in digest["histograms"]
