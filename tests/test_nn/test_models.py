"""Model zoo: paper MLP, ResNet-18, LeNet — structure and behaviour."""

import numpy as np
import pytest

from repro.nn import LeNet, MLP, paper_mlp, resnet18
from repro.nn.models import BasicBlock, resnet18_cifar_small
from repro.tensor import Tensor, no_grad


class TestMLP:
    def test_paper_mlp_has_32_hidden_units(self):
        m = paper_mlp(rng=0)
        assert m.layers[0].out_features == 32  # b1..b32 in Fig. 1

    def test_output_shape(self):
        m = MLP(10, (16, 8), 4, rng=0)
        out = m(Tensor(np.zeros((5, 10), dtype=np.float32)))
        assert out.shape == (5, 4)

    def test_flattens_image_inputs(self):
        m = MLP(3 * 8 * 8, (16,), 10, rng=0)
        out = m(Tensor(np.zeros((2, 3, 8, 8), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_requires_hidden_layer(self):
        with pytest.raises(ValueError):
            MLP(4, (), 2)

    def test_deterministic_construction(self):
        a, b = paper_mlp(rng=3), paper_mlp(rng=3)
        x = Tensor(np.random.default_rng(0).normal(size=(4, 2)).astype(np.float32))
        assert np.array_equal(a(x).data, b(x).data)


class TestBasicBlock:
    def test_identity_shortcut_when_shapes_match(self):
        from repro.nn.layers import Identity

        block = BasicBlock(8, 8, stride=1, rng=0)
        assert isinstance(block.shortcut, Identity)

    def test_projection_shortcut_on_stride(self):
        block = BasicBlock(8, 16, stride=2, rng=0)
        out = block(Tensor(np.zeros((1, 8, 8, 8), dtype=np.float32)))
        assert out.shape == (1, 16, 4, 4)

    def test_residual_path_contributes(self):
        block = BasicBlock(4, 4, rng=0).eval()
        x = Tensor(np.random.default_rng(1).normal(size=(1, 4, 4, 4)).astype(np.float32))
        with no_grad():
            out = block(x)
        # Zeroing conv weights should leave relu(shortcut) = relu(x).
        block.conv1.weight.data[...] = 0
        block.conv2.weight.data[...] = 0
        with no_grad():
            residual_only = block(x)
        assert np.allclose(residual_only.data, np.maximum(x.data, 0), atol=1e-5)
        assert not np.allclose(out.data, residual_only.data)


class TestResNet:
    def test_full_resnet18_parameter_count(self):
        # Torchvision's CIFAR-adapted resnet18 (3x3 stem, 10 classes) ≈ 11.17M.
        model = resnet18(rng=0)
        assert 11_100_000 < model.num_parameters() < 11_250_000

    def test_small_variant_same_layer_structure(self):
        full = resnet18(rng=0)
        small = resnet18_cifar_small(rng=0)
        assert full.layer_names() == small.layer_names()

    def test_forward_shape(self, tiny_resnet):
        with no_grad():
            out = tiny_resnet(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_has_four_stages_of_two_blocks(self, tiny_resnet):
        assert len(tiny_resnet.stages) == 4
        assert all(len(stage) == 2 for stage in tiny_resnet.stages)

    def test_layer_names_ordered_and_parameterised(self, tiny_resnet):
        names = tiny_resnet.layer_names()
        assert names[0] == "stem.0"
        assert names[-1] == "fc"
        for name in names:
            module = tiny_resnet.get_submodule(name)
            assert module._parameters

    def test_mismatched_config_raises(self):
        from repro.nn.models.resnet import ResNet

        with pytest.raises(ValueError):
            ResNet(block_counts=(2, 2), widths=(8, 16, 32))

    def test_downsampling_halves_resolution_per_stage(self, tiny_resnet):
        x = Tensor(np.zeros((1, 3, 32, 32), dtype=np.float32))
        with no_grad():
            feat = tiny_resnet.stem(x)
            assert feat.shape[2:] == (32, 32)
            feat = tiny_resnet.stages[0](feat)
            assert feat.shape[2:] == (32, 32)
            feat = tiny_resnet.stages[1](feat)
            assert feat.shape[2:] == (16, 16)
            feat = tiny_resnet.stages[2](feat)
            assert feat.shape[2:] == (8, 8)
            feat = tiny_resnet.stages[3](feat)
            assert feat.shape[2:] == (4, 4)


class TestLeNet:
    def test_mnist_shape(self):
        model = LeNet(in_channels=1, image_size=28, rng=0)
        out = model(Tensor(np.zeros((2, 1, 28, 28), dtype=np.float32)))
        assert out.shape == (2, 10)

    def test_cifar_shape(self):
        model = LeNet(in_channels=3, image_size=32, num_classes=5, rng=0)
        out = model(Tensor(np.zeros((2, 3, 32, 32), dtype=np.float32)))
        assert out.shape == (2, 5)

    def test_too_small_image_raises(self):
        with pytest.raises(ValueError):
            LeNet(image_size=2)
