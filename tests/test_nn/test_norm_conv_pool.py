"""BatchNorm, Conv2d, pooling layers."""

import numpy as np
import pytest

from repro.nn import AvgPool2d, BatchNorm1d, BatchNorm2d, Conv2d, GlobalAvgPool2d, MaxPool2d
from repro.tensor import Tensor


class TestBatchNorm:
    def test_train_mode_normalises_batch(self):
        bn = BatchNorm1d(4)
        x = Tensor(np.random.default_rng(0).normal(5.0, 3.0, size=(64, 4)).astype(np.float32))
        out = bn(x).data
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-4)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_move_toward_batch_stats(self):
        bn = BatchNorm1d(2, momentum=0.5)
        x = Tensor(np.full((16, 2), 10.0, dtype=np.float32))
        bn(x)
        assert np.allclose(bn.running_mean, 5.0)  # 0.5*0 + 0.5*10
        assert int(bn.num_batches_tracked) == 1

    def test_eval_mode_uses_running_stats(self):
        bn = BatchNorm1d(2)
        x = Tensor(np.random.default_rng(1).normal(size=(32, 2)).astype(np.float32))
        for _ in range(50):
            bn(x)
        bn.eval()
        single = Tensor(np.zeros((1, 2), dtype=np.float32))
        out = bn(single).data
        expected = (0.0 - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        assert np.allclose(out, expected.reshape(1, 2), atol=1e-5)

    def test_eval_is_deterministic(self):
        bn = BatchNorm2d(3).eval()
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 4, 4)).astype(np.float32))
        assert np.array_equal(bn(x).data, bn(x).data)

    def test_2d_reduces_over_spatial_axes(self):
        bn = BatchNorm2d(2)
        x = Tensor(np.random.default_rng(3).normal(3.0, 2.0, size=(8, 2, 5, 5)).astype(np.float32))
        out = bn(x).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-4)

    def test_gamma_beta_trainable(self):
        bn = BatchNorm1d(3)
        names = [n for n, _ in bn.named_parameters()]
        assert names == ["weight", "bias"]

    def test_wrong_rank_raises(self):
        with pytest.raises(ValueError, match="2-D"):
            BatchNorm1d(3)(Tensor(np.zeros((2, 3, 4), dtype=np.float32)))

    def test_wrong_channels_raises(self):
        with pytest.raises(ValueError, match="channels"):
            BatchNorm2d(3)(Tensor(np.zeros((1, 4, 2, 2), dtype=np.float32)))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BatchNorm1d(0)
        with pytest.raises(ValueError):
            BatchNorm1d(3, momentum=0.0)


class TestConvLayer:
    def test_shape_with_stride_padding(self):
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=0)
        out = conv(Tensor(np.zeros((2, 3, 16, 16), dtype=np.float32)))
        assert out.shape == (2, 8, 8, 8)

    def test_parameter_names(self):
        conv = Conv2d(1, 2, 3, rng=0)
        assert [n for n, _ in conv.named_parameters()] == ["weight", "bias"]
        assert Conv2d(1, 2, 3, bias=False, rng=0).bias is None

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, padding=-1)

    def test_gradients_reach_weight(self):
        conv = Conv2d(1, 1, 3, padding=1, rng=0)
        out = conv(Tensor(np.ones((1, 1, 4, 4), dtype=np.float32)))
        out.sum().backward()
        assert conv.weight.grad is not None
        assert conv.weight.grad.shape == conv.weight.shape


class TestPoolLayers:
    def test_max_pool_layer(self):
        out = MaxPool2d(2)(Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)))
        assert out.shape == (1, 1, 2, 2)

    def test_avg_pool_layer_custom_stride(self):
        out = AvgPool2d(2, stride=1)(Tensor(np.zeros((1, 1, 4, 4), dtype=np.float32)))
        assert out.shape == (1, 1, 3, 3)

    def test_global_avg_pool_layer(self):
        out = GlobalAvgPool2d()(Tensor(np.ones((2, 5, 3, 3), dtype=np.float32)))
        assert out.shape == (2, 5)
        assert np.allclose(out.data, 1.0)

    def test_invalid_kernel_raises(self):
        with pytest.raises(ValueError):
            MaxPool2d(0)
