"""Dense, Flatten, Identity, Dropout, activations."""

import numpy as np
import pytest

from repro.nn import Dense, Dropout, Flatten, Identity
from repro.nn.activations import LeakyReLU, LogSoftmax, ReLU, Sigmoid, Softmax, Tanh
from repro.tensor import Tensor


class TestDense:
    def test_output_shape_and_value(self):
        layer = Dense(3, 2, rng=0)
        layer.weight.data[...] = np.arange(6, dtype=np.float32).reshape(3, 2)
        layer.bias.data[...] = np.array([1.0, -1.0], dtype=np.float32)
        out = layer(Tensor(np.array([[1.0, 1.0, 1.0]], dtype=np.float32)))
        assert np.allclose(out.data, [[0 + 2 + 4 + 1, 1 + 3 + 5 - 1]])

    def test_no_bias(self):
        layer = Dense(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert [n for n, _ in layer.named_parameters()] == ["weight"]

    def test_invalid_sizes_raise(self):
        with pytest.raises(ValueError):
            Dense(0, 4)
        with pytest.raises(ValueError):
            Dense(4, -1)

    def test_deterministic_init_from_seed(self):
        a, b = Dense(5, 5, rng=7), Dense(5, 5, rng=7)
        assert np.array_equal(a.weight.data, b.weight.data)

    def test_gradients_flow(self):
        layer = Dense(3, 2, rng=0)
        out = layer(Tensor(np.ones((4, 3), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert np.allclose(layer.bias.grad, 4.0)


class TestStructural:
    def test_flatten(self):
        out = Flatten()(Tensor(np.zeros((2, 3, 4, 5), dtype=np.float32)))
        assert out.shape == (2, 60)

    def test_identity(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert Identity()(x) is x


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = Dropout(0.5, rng=0).eval()
        x = Tensor(np.ones((10, 10), dtype=np.float32))
        assert d(x) is x

    def test_train_mode_zeroes_and_rescales(self):
        d = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        out = d(x).data
        zeros = (out == 0).mean()
        assert 0.4 < zeros < 0.6
        kept = out[out != 0]
        assert np.allclose(kept, 2.0)  # inverted scaling 1/keep

    def test_p_zero_is_identity_in_train(self):
        d = Dropout(0.0)
        x = Tensor(np.ones(5, dtype=np.float32))
        assert d(x) is x

    def test_invalid_p_raises(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestActivations:
    def test_relu_values(self):
        out = ReLU()(Tensor(np.array([-1.0, 0.0, 2.0], dtype=np.float32)))
        assert np.array_equal(out.data, [0, 0, 2])

    def test_leaky_relu_slope(self):
        out = LeakyReLU(0.1)(Tensor(np.array([-10.0, 10.0], dtype=np.float32)))
        assert np.allclose(out.data, [-1.0, 10.0])

    def test_tanh_sigmoid_ranges(self):
        x = Tensor(np.linspace(-5, 5, 11).astype(np.float32))
        assert np.all(np.abs(Tanh()(x).data) < 1.0)
        s = Sigmoid()(x).data
        assert np.all((s > 0) & (s < 1))

    def test_softmax_layer_normalises(self):
        out = Softmax()(Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32)))
        assert np.allclose(out.data.sum(axis=1), 1.0, atol=1e-6)

    def test_log_softmax_layer(self):
        x = Tensor(np.random.default_rng(1).normal(size=(2, 5)).astype(np.float32))
        assert np.allclose(np.exp(LogSoftmax()(x).data).sum(axis=1), 1.0, atol=1e-5)
