"""Module system: registration, traversal, state_dict, train/eval."""

import numpy as np
import pytest

from repro.nn import Dense, Module, Parameter, Sequential
from repro.nn.norm import BatchNorm1d
from repro.tensor import Tensor


class _TwoLayer(Module):
    def __init__(self):
        super().__init__()
        self.first = Dense(4, 8, rng=0)
        self.second = Dense(8, 2, rng=1)

    def forward(self, x):
        return self.second(self.first(x).relu())


class TestRegistration:
    def test_parameters_registered_by_assignment(self):
        m = _TwoLayer()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["first.weight", "first.bias", "second.weight", "second.bias"]

    def test_num_parameters(self):
        m = _TwoLayer()
        assert m.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_named_modules_includes_self_and_children(self):
        m = _TwoLayer()
        names = [n for n, _ in m.named_modules()]
        assert names == ["", "first", "second"]

    def test_get_submodule_and_parameter(self):
        m = _TwoLayer()
        assert m.get_submodule("first") is m.first
        assert m.get_parameter("second.weight") is m.second.weight

    def test_get_unknown_paths_raise(self):
        m = _TwoLayer()
        with pytest.raises(KeyError):
            m.get_submodule("third")
        with pytest.raises(KeyError):
            m.get_parameter("first.gamma")

    def test_parameter_requires_grad(self):
        p = Parameter(np.zeros((2, 2), dtype=np.float32))
        assert p.requires_grad
        assert p.dtype == np.float32


class TestTrainEval:
    def test_mode_propagates_to_children(self):
        m = Sequential(Dense(2, 2, rng=0), BatchNorm1d(2))
        m.eval()
        assert all(not child.training for child in m)
        m.train()
        assert all(child.training for child in m)

    def test_zero_grad_clears_all(self):
        m = _TwoLayer()
        out = m(Tensor(np.ones((2, 4), dtype=np.float32)))
        out.sum().backward()
        assert m.first.weight.grad is not None
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestStateDict:
    def test_roundtrip_exact(self):
        m1, m2 = _TwoLayer(), _TwoLayer()
        m2.load_state_dict(m1.state_dict())
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)).astype(np.float32))
        assert np.array_equal(m1(x).data, m2(x).data)

    def test_state_dict_is_a_copy(self):
        m = _TwoLayer()
        state = m.state_dict()
        state["first.weight"][...] = 0
        assert m.first.weight.data.any()

    def test_missing_key_raises(self):
        m = _TwoLayer()
        state = m.state_dict()
        del state["first.bias"]
        with pytest.raises(KeyError, match="missing"):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = _TwoLayer()
        state = m.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError, match="unexpected"):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = _TwoLayer()
        state = m.state_dict()
        state["first.weight"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            m.load_state_dict(state)

    def test_buffers_included(self):
        bn = BatchNorm1d(3)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state


class TestHooks:
    def test_forward_hook_can_replace_output(self):
        m = Dense(2, 2, rng=0)
        handle = m.register_forward_hook(lambda mod, inp, out: out * 0)
        out = m(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert np.allclose(out.data, 0)
        handle.remove()
        out = m(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert out.data.any()

    def test_pre_hook_can_replace_inputs(self):
        m = Dense(2, 2, rng=0)
        baseline = m(Tensor(np.zeros((1, 2), dtype=np.float32))).data.copy()
        handle = m.register_forward_pre_hook(
            lambda mod, inputs: (Tensor(np.zeros((1, 2), dtype=np.float32)),)
        )
        out = m(Tensor(np.full((1, 2), 7.0, dtype=np.float32)))
        assert np.allclose(out.data, baseline)
        handle.remove()

    def test_hook_handle_context_manager(self):
        m = Dense(2, 2, rng=0)
        with m.register_forward_hook(lambda mod, inp, out: out * 0):
            assert np.allclose(m(Tensor(np.ones((1, 2), dtype=np.float32))).data, 0)
        assert m(Tensor(np.ones((1, 2), dtype=np.float32))).data.any()

    def test_hook_returning_none_keeps_output(self):
        m = Dense(2, 2, rng=0)
        seen = []
        with m.register_forward_hook(lambda mod, inp, out: seen.append(out.shape)):
            out = m(Tensor(np.ones((3, 2), dtype=np.float32)))
        assert seen == [(3, 2)]
        assert out.shape == (3, 2)

    def test_multiple_hooks_run_in_order(self):
        m = Dense(2, 2, rng=0)
        order = []
        m.register_forward_hook(lambda *a: order.append("a"))
        m.register_forward_hook(lambda *a: order.append("b"))
        m(Tensor(np.ones((1, 2), dtype=np.float32)))
        assert order == ["a", "b"]
