"""Weight initialiser statistics and fan computation."""

import math

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_dense_shape(self):
        assert init.fan_in_and_out((10, 20)) == (10, 20)

    def test_conv_shape(self):
        assert init.fan_in_and_out((8, 4, 3, 3)) == (4 * 9, 8 * 9)

    def test_unsupported_shape_raises(self):
        with pytest.raises(ValueError):
            init.fan_in_and_out((3,))


class TestInitialisers:
    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((100, 50), rng)
        bound = math.sqrt(2.0) * math.sqrt(3.0 / 100)
        assert w.dtype == np.float32
        assert np.abs(w).max() <= bound + 1e-6

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(1)
        w = init.kaiming_normal((1000, 100), rng)
        expected = math.sqrt(2.0) / math.sqrt(1000)
        assert abs(w.std() - expected) / expected < 0.05

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(2)
        w = init.xavier_uniform((60, 40), rng)
        bound = math.sqrt(6.0 / 100)
        assert np.abs(w).max() <= bound + 1e-6

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(3)
        w = init.xavier_normal((500, 500), rng)
        expected = math.sqrt(2.0 / 1000)
        assert abs(w.std() - expected) / expected < 0.05

    def test_zeros_ones(self):
        assert not init.zeros((3, 3)).any()
        assert (init.ones((2, 2)) == 1).all()

    def test_determinism_under_same_generator_state(self):
        a = init.kaiming_uniform((5, 5), np.random.default_rng(9))
        b = init.kaiming_uniform((5, 5), np.random.default_rng(9))
        assert np.array_equal(a, b)
