"""Traditional random single-bit-flip injector."""

import numpy as np
import pytest

from repro.baselines import InjectionOutcome, RandomFaultInjector
from repro.faults import TargetSpec


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return RandomFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestInjectOnce:
    def test_record_fields(self, injector, rng):
        record = injector.inject_once(rng)
        assert 0 <= record.bit < 32
        assert record.outcome in InjectionOutcome
        assert 0.0 <= record.mismatch_fraction <= 1.0

    def test_masked_iff_no_mismatch(self, injector, rng):
        for _ in range(30):
            record = injector.inject_once(rng)
            if record.outcome is InjectionOutcome.MASKED:
                assert record.mismatch_fraction == 0.0
            elif record.outcome is InjectionOutcome.SDC:
                assert record.mismatch_fraction > 0.0

    def test_weights_restored_after_each_injection(self, injector, rng):
        before = {n: p.data.copy() for n, p in injector.targets}
        for _ in range(10):
            injector.inject_once(rng)
        for name, param in injector.targets:
            assert np.array_equal(before[name], param.data)


class TestCampaign:
    def test_rates_partition(self, injector):
        campaign = injector.run(200)
        total = campaign.sdc_rate + campaign.due_rate + campaign.masked_rate
        assert total == pytest.approx(1.0)
        assert len(campaign) == 200

    def test_most_flips_masked(self, injector):
        # Known FI result: the majority of single-bit flips are benign
        # (23/32 lanes are mantissa bits).
        campaign = injector.run(200)
        assert campaign.masked_rate > 0.5

    def test_sdc_interval_brackets_rate(self, injector):
        campaign = injector.run(150)
        lo, hi = campaign.sdc_interval()
        assert lo <= campaign.sdc_rate <= hi

    def test_by_bit_field_exponent_worst(self, injector):
        campaign = injector.run(400)
        rates = campaign.by_bit_field()
        assert rates["exponent"] > rates["mantissa"]

    def test_reproducible(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        make = lambda: RandomFaultInjector(trained_mlp, eval_x, eval_y, seed=5)
        a = make().run(50)
        b = make().run(50)
        assert [r.outcome for r in a.records] == [r.outcome for r in b.records]

    def test_summary_keys(self, injector):
        summary = injector.run(20).summary()
        assert {"sdc_rate", "due_rate", "masked_rate", "injections"} <= set(summary)

    def test_validation(self, injector):
        with pytest.raises(ValueError):
            injector.run(0)

    def test_empty_campaign_rates_nan(self):
        from repro.baselines import RandomFICampaign

        campaign = RandomFICampaign()
        assert np.isnan(campaign.sdc_rate)
        assert np.isnan(campaign.mean_mismatch)


class TestPerLayer:
    def test_one_campaign_per_layer(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = RandomFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        campaigns = injector.run_per_layer(injections_per_layer=30)
        assert set(campaigns) == {"layers.0", "layers.2"}
        assert all(len(c) == 30 for c in campaigns.values())
