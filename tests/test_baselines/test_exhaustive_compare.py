"""Exhaustive bit sweep and estimator comparison statistics."""

import numpy as np
import pytest

from repro.baselines import ExhaustiveBitInjector, compare_estimators, wilson_interval
from repro.faults import TargetSpec


@pytest.fixture(scope="module")
def exhaustive(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    injector = ExhaustiveBitInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.single_layer("layers.2"), seed=0
    )
    return injector, injector.run()  # layers.2 is small: full enumeration


class TestExhaustive:
    def test_space_size(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = ExhaustiveBitInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.single_layer("layers.2"), seed=0
        )
        # layers.2: Dense(32, 2) weight + bias = 66 params × 32 bits.
        assert injector.space_size == 66 * 32

    def test_full_run_counts_every_site(self, exhaustive):
        _, sensitivity = exhaustive
        assert sum(sensitivity.count_by_bit.values()) == 66 * 32
        assert all(sensitivity.count_by_bit[b] == 66 for b in range(32))

    def test_exponent_flips_most_dangerous(self, exhaustive):
        _, sensitivity = exhaustive
        rows = {row["field"]: row for row in sensitivity.field_table()}
        assert rows["exponent"]["sdc_rate"] > rows["mantissa"]["sdc_rate"]

    def test_high_exponent_bit_worst_lane(self, exhaustive):
        _, sensitivity = exhaustive
        combined = {
            b: sensitivity.sdc_by_bit[b] + sensitivity.due_by_bit[b]
            for b in sensitivity.sdc_by_bit
        }
        # Bit 30 (exponent MSB) must be among the most damaging lanes.
        top = sorted(combined, key=combined.get, reverse=True)[:8]
        assert 30 in top

    def test_budgeted_run_samples_subset(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = ExhaustiveBitInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        sensitivity = injector.run(budget=100)
        assert sum(sensitivity.count_by_bit.values()) == 100

    def test_budget_validation(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        injector = ExhaustiveBitInjector(trained_mlp, eval_x, eval_y, seed=0)
        with pytest.raises(ValueError):
            injector.run(budget=0)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(30, 100)
        assert lo < 0.3 < hi

    def test_sane_at_extremes(self):
        lo, hi = wilson_interval(0, 50)
        assert lo == 0.0 and hi > 0.0
        lo, hi = wilson_interval(50, 50)
        assert lo < 1.0 and hi == 1.0

    def test_narrows_with_n(self):
        wide = wilson_interval(5, 10)
        narrow = wilson_interval(500, 1000)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)


class TestCompare:
    def test_identical_rates_agree(self):
        comparison = compare_estimators("a", 20, 100, "b", 40, 200)
        assert comparison.agree
        assert comparison.p_value == pytest.approx(1.0)

    def test_different_rates_detected(self):
        comparison = compare_estimators("a", 10, 1000, "b", 300, 1000)
        assert not comparison.agree
        assert comparison.p_value < 1e-6

    def test_zero_rates_degenerate(self):
        comparison = compare_estimators("a", 0, 100, "b", 0, 100)
        assert comparison.agree
        assert comparison.z_statistic == 0.0

    def test_efficiency_ratio_scale_free_for_matched_estimators(self):
        # Same underlying rate, different n: width²·n is invariant, ratio ≈ 1.
        comparison = compare_estimators("cheap", 10, 100, "pricey", 40, 400)
        assert comparison.efficiency_ratio() == pytest.approx(1.0, abs=0.15)

    def test_efficiency_ratio_rewards_low_variance_estimates(self):
        # A near-zero rate has a much narrower interval than p=0.5 at equal
        # n, i.e. estimator a extracts more precision per forward pass.
        comparison = compare_estimators("rare", 1, 1000, "coin", 500, 1000)
        assert comparison.efficiency_ratio() > 5.0

    def test_summary_keys(self):
        summary = compare_estimators("a", 1, 10, "b", 2, 10).summary()
        assert {"estimate_a", "estimate_b", "p_value", "agree"} <= set(summary)

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_estimators("a", 0, 0, "b", 1, 10)
