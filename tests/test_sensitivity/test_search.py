"""Critical-bit search."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.sensitivity import TaylorSensitivity, critical_bit_search, random_bit_search


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


@pytest.fixture()
def sensitivity(trained_mlp, moons_eval, injector):
    eval_x, eval_y = moons_eval
    return TaylorSensitivity(trained_mlp, eval_x, eval_y, injector.parameter_targets)


class TestCriticalBitSearch:
    def test_finds_a_damaging_site_quickly(self, injector, sensitivity):
        result = critical_bit_search(injector, sensitivity, candidates=32)
        assert result.found
        assert result.set_size >= 1
        assert result.forward_passes <= 10  # gradient guidance, not luck

    def test_found_set_really_degrades_error(self, injector, sensitivity):
        from repro.sensitivity.search import _configuration_for

        result = critical_bit_search(injector, sensitivity, candidates=32)
        statistic = injector.make_statistic(fault_model=None, rng=np.random.default_rng(0))
        error = statistic(_configuration_for(list(result.sites), injector.parameter_targets))
        assert error > injector.golden_error

    def test_deterministic(self, injector, sensitivity):
        a = critical_bit_search(injector, sensitivity, candidates=16)
        b = critical_bit_search(injector, sensitivity, candidates=16)
        assert a.sites == b.sites
        assert a.forward_passes == b.forward_passes

    def test_validation(self, injector, sensitivity):
        with pytest.raises(ValueError):
            critical_bit_search(injector, sensitivity, candidates=0)
        with pytest.raises(ValueError):
            critical_bit_search(injector, sensitivity, max_set_size=0)


class TestRandomBitSearch:
    def test_eventually_finds_one(self, injector):
        result = random_bit_search(injector, np.random.default_rng(0), max_trials=500)
        assert result.found
        assert result.set_size == 1

    def test_budget_respected_when_unfindable(self, trained_mlp, moons_eval):
        # Restrict to low mantissa bits of the last bias: flips there are
        # numerically negligible, so the search must exhaust its budget.
        from repro.faults import BernoulliBitFlipModel

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y,
            spec=TargetSpec(surfaces=frozenset({__import__("repro.faults", fromlist=["FaultSurface"]).FaultSurface.BIASES}),
                            include_layers=("layers.2",)),
            seed=0,
        )
        # Patch: search flips any bit of the selected targets, so instead we
        # just verify the not-found path with a tiny trial budget on a
        # target space where damaging bits are rare.
        result = random_bit_search(injector, np.random.default_rng(3), max_trials=2)
        assert result.forward_passes <= 2
        if not result.found:
            assert result.sites == ()

    def test_mean_budget_exceeds_gradient_search(self, injector, sensitivity):
        """Statistical comparison: gradient guidance needs fewer passes on
        average than random injection (the A4 claim)."""
        gradient = critical_bit_search(injector, sensitivity, candidates=32)
        random_costs = [
            random_bit_search(injector, np.random.default_rng(seed), max_trials=300).forward_passes
            for seed in range(10)
        ]
        assert gradient.forward_passes < np.mean(random_costs) + 3

    def test_validation(self, injector):
        with pytest.raises(ValueError):
            random_bit_search(injector, np.random.default_rng(0), max_trials=0)
