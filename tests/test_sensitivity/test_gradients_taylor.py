"""Gradient extraction and Taylor bit-impact prediction."""

import numpy as np
import pytest

from repro.faults import TargetSpec, resolve_parameter_targets
from repro.sensitivity import TaylorSensitivity, parameter_gradients
from repro.sensitivity.taylor import _flip_deltas


class TestParameterGradients:
    def test_covers_every_parameter(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        gradients = parameter_gradients(trained_mlp, eval_x, eval_y)
        names = {name for name, _ in trained_mlp.named_parameters()}
        assert set(gradients) == names
        for name, param in trained_mlp.named_parameters():
            assert gradients[name].shape == param.data.shape

    def test_does_not_disturb_model_state(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        before = {n: p.data.copy() for n, p in trained_mlp.named_parameters()}
        grads_before = {n: p.grad for n, p in trained_mlp.named_parameters()}
        was_training = trained_mlp.training
        parameter_gradients(trained_mlp, eval_x, eval_y)
        for name, param in trained_mlp.named_parameters():
            assert np.array_equal(before[name], param.data)
            assert param.grad is grads_before[name]
        assert trained_mlp.training == was_training

    def test_gradients_nonzero_for_imperfect_fit(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        gradients = parameter_gradients(trained_mlp, eval_x, eval_y)
        total = sum(np.abs(g).sum() for g in gradients.values())
        assert total > 0

    def test_validation(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError):
            parameter_gradients(trained_mlp, eval_x, eval_y[:-1])
        with pytest.raises(ValueError):
            parameter_gradients(trained_mlp, np.zeros((0, 2)), np.zeros(0))


class TestFlipDeltas:
    def test_shape(self):
        deltas = _flip_deltas(np.asarray([1.0, -2.0], dtype=np.float32))
        assert deltas.shape == (2, 32)

    def test_known_deltas(self):
        deltas = _flip_deltas(np.asarray([1.0], dtype=np.float32))
        assert deltas[0, 31] == pytest.approx(-2.0)  # sign: 1 -> -1
        assert deltas[0, 22] == pytest.approx(0.5)  # mantissa MSB: 1 -> 1.5
        assert np.isinf(deltas[0, 30])  # exponent MSB: 1 -> inf

    def test_mantissa_deltas_grow_with_lane(self):
        deltas = np.abs(_flip_deltas(np.asarray([1.0], dtype=np.float32))[0, :23])
        assert np.all(np.diff(deltas) > 0)


class TestTaylorSensitivity:
    @pytest.fixture()
    def sensitivity(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        targets = resolve_parameter_targets(trained_mlp, TargetSpec.weights_and_biases())
        return TaylorSensitivity(trained_mlp, eval_x, eval_y, targets)

    def test_impacts_cover_targets(self, sensitivity):
        for name, param in sensitivity.targets:
            assert sensitivity.impacts[name].shape == (param.size, 32)

    def test_top_sites_sorted_descending(self, sensitivity):
        sites = sensitivity.top_sites(10)
        assert len(sites) == 10
        impacts = [s.predicted_impact for s in sites]
        assert all(a >= b for a, b in zip(impacts, impacts[1:]))

    def test_top_sites_are_catastrophic_first(self, sensitivity):
        # The network holds weights < 2, so bit-30 flips are non-finite and
        # must dominate the ranking.
        top = sensitivity.top_sites(5)
        assert all(np.isinf(s.predicted_impact) for s in top)
        assert all(s.field == "exponent" for s in top)

    def test_site_impact_lookup_consistent(self, sensitivity):
        site = sensitivity.top_sites(1)[0]
        assert sensitivity.site_impact(site.target, site.element_index, site.bit) == site.predicted_impact

    def test_lane_profile_monotone_in_mantissa(self, sensitivity):
        lanes = sensitivity.lane_profile()
        mantissa = [lanes[b] for b in range(0, 23)]
        assert all(a < b for a, b in zip(mantissa, mantissa[1:]))

    def test_lane_profile_predicts_measured_ordering(self, trained_mlp, moons_eval, sensitivity):
        """The analytic lane ranking must agree with exhaustive ground truth
        (the validation claim of experiment A4)."""
        from scipy import stats as sps

        from repro.baselines import ExhaustiveBitInjector

        eval_x, eval_y = moons_eval
        injector = ExhaustiveBitInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        measured = injector.run()
        lanes = sensitivity.lane_profile()
        finite_max = max(v for v in lanes.values() if np.isfinite(v))
        predicted = [lanes[b] if np.isfinite(lanes[b]) else 10 * finite_max for b in range(32)]
        observed = [measured.sdc_by_bit[b] + measured.due_by_bit[b] for b in range(32)]
        result = sps.spearmanr(predicted, observed)
        assert result.statistic > 0.6
        assert result.pvalue < 1e-4

    def test_catastrophic_counts_match_infinite_impacts(self, sensitivity):
        counts = sensitivity.catastrophic_site_counts()
        for name, impact in sensitivity.impacts.items():
            assert counts[name] == int(np.isinf(impact).sum())

    def test_layer_profile_keys(self, sensitivity):
        profile = sensitivity.layer_profile()
        assert set(profile) == {name for name, _ in sensitivity.targets}
        assert all(v >= 0 for v in profile.values())

    def test_validation(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        with pytest.raises(ValueError):
            TaylorSensitivity(trained_mlp, eval_x, eval_y, [])
        sens = TaylorSensitivity(
            trained_mlp, eval_x, eval_y,
            resolve_parameter_targets(trained_mlp, TargetSpec()),
        )
        with pytest.raises(ValueError):
            sens.top_sites(0)
