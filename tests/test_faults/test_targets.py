"""Fault surface and layer targeting."""

import pytest

from repro.faults import FaultSurface, TargetSpec, resolve_activation_modules, resolve_parameter_targets
from repro.nn import paper_mlp
from repro.nn.models import resnet18_cifar_small


@pytest.fixture(scope="module")
def mlp():
    return paper_mlp(rng=0)


@pytest.fixture(scope="module")
def resnet():
    return resnet18_cifar_small(rng=0)


class TestTargetSpec:
    def test_default_is_weights_only(self):
        assert TargetSpec().surfaces == frozenset({FaultSurface.WEIGHTS})

    def test_empty_surfaces_rejected(self):
        with pytest.raises(ValueError):
            TargetSpec(surfaces=frozenset())

    def test_all_surfaces_constructor(self):
        assert TargetSpec.all_surfaces().surfaces == frozenset(FaultSurface)

    def test_layer_glob_matching(self):
        spec = TargetSpec(include_layers=("stages.1.*",), exclude_layers=("*.bn2",))
        assert spec.matches_layer("stages.1.0.conv1")
        assert not spec.matches_layer("stages.2.0.conv1")
        assert not spec.matches_layer("stages.1.0.bn2")

    def test_none_include_matches_everything(self):
        spec = TargetSpec(exclude_layers=("fc",))
        assert spec.matches_layer("stem.0")
        assert not spec.matches_layer("fc")


class TestResolveParameters:
    def test_weights_only_excludes_biases(self, mlp):
        names = [n for n, _ in resolve_parameter_targets(mlp, TargetSpec())]
        assert names == ["layers.0.weight", "layers.2.weight"]

    def test_weights_and_biases(self, mlp):
        names = [n for n, _ in resolve_parameter_targets(mlp, TargetSpec.weights_and_biases())]
        assert len(names) == 4

    def test_biases_only(self, mlp):
        spec = TargetSpec(surfaces=frozenset({FaultSurface.BIASES}))
        names = [n for n, _ in resolve_parameter_targets(mlp, spec)]
        assert names == ["layers.0.bias", "layers.2.bias"]

    def test_single_layer(self, resnet):
        targets = resolve_parameter_targets(resnet, TargetSpec.single_layer("stages.2.0.conv1"))
        assert [n for n, _ in targets] == ["stages.2.0.conv1.weight"]

    def test_batchnorm_scale_counts_as_weight(self, resnet):
        targets = resolve_parameter_targets(resnet, TargetSpec.single_layer("stem.1"))
        names = [n for n, _ in targets]
        assert "stem.1.weight" in names and "stem.1.bias" in names

    def test_order_matches_named_parameters(self, resnet):
        spec = TargetSpec.weights_and_biases()
        targets = [n for n, _ in resolve_parameter_targets(resnet, spec)]
        all_names = [n for n, _ in resnet.named_parameters()]
        assert targets == all_names


class TestResolveActivations:
    def test_empty_when_surface_not_selected(self, mlp):
        assert resolve_activation_modules(mlp, TargetSpec()) == []

    def test_selects_parameterised_leaves(self, mlp):
        modules = resolve_activation_modules(mlp, TargetSpec.all_surfaces())
        assert [n for n, _ in modules] == ["layers.0", "layers.2"]

    def test_respects_layer_filter(self, resnet):
        spec = TargetSpec(
            surfaces=frozenset({FaultSurface.ACTIVATIONS}), include_layers=("stem.*",)
        )
        modules = resolve_activation_modules(resnet, spec)
        assert all(n.startswith("stem.") for n, _ in modules)
        assert modules  # stem conv and bn present
