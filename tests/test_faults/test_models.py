"""Fault model distributions."""

import math

import numpy as np
import pytest

from repro.bits import count_set_bits
from repro.faults import BernoulliBitFlipModel, ByteErrorModel, SingleBitFlipModel, StuckAtModel


class TestBernoulliModel:
    def test_expected_flips(self):
        model = BernoulliBitFlipModel(0.01)
        assert model.expected_flips(100) == pytest.approx(32.0)

    def test_restricted_lanes_expected_flips(self):
        model = BernoulliBitFlipModel(0.5, bits=(30, 31))
        assert model.expected_flips(10) == pytest.approx(10.0)

    def test_sample_respects_lanes(self, rng):
        model = BernoulliBitFlipModel(0.8, bits=(0, 1))
        mask = model.sample_mask((50,), rng)
        assert not np.any(mask & ~np.uint32(0b11))

    def test_log_prob_empty_mask(self):
        model = BernoulliBitFlipModel(0.01)
        mask = np.zeros(10, dtype=np.uint32)
        expected = 320 * math.log1p(-0.01)
        assert model.log_prob_mask(mask) == pytest.approx(expected)

    def test_log_prob_counts_bits(self):
        model = BernoulliBitFlipModel(0.25)
        mask = np.array([0b111], dtype=np.uint32)
        expected = 3 * math.log(0.25) + 29 * math.log(0.75)
        assert model.log_prob_mask(mask) == pytest.approx(expected)

    def test_log_prob_outside_lanes_is_minus_inf(self):
        model = BernoulliBitFlipModel(0.5, bits=(31,))
        mask = np.array([1], dtype=np.uint32)  # bit 0 set, not allowed
        assert model.log_prob_mask(mask) == -math.inf

    def test_degenerate_probabilities(self):
        zero = BernoulliBitFlipModel(0.0)
        assert zero.log_prob_mask(np.zeros(2, dtype=np.uint32)) == 0.0
        assert zero.log_prob_mask(np.ones(2, dtype=np.uint32)) == -math.inf
        one = BernoulliBitFlipModel(1.0)
        assert one.log_prob_mask(np.full(2, 0xFFFFFFFF, dtype=np.uint32)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BernoulliBitFlipModel(1.5)
        with pytest.raises(ValueError):
            BernoulliBitFlipModel(0.1, bits=(40,))
        with pytest.raises(ValueError):
            BernoulliBitFlipModel(0.1, bits=())


class TestSingleBitModel:
    def test_exactly_one_flip(self, rng):
        model = SingleBitFlipModel()
        for _ in range(20):
            mask = model.sample_mask((7, 3), rng)
            assert count_set_bits(mask) == 1

    def test_lane_restriction(self, rng):
        model = SingleBitFlipModel(bits=(31,))
        for _ in range(10):
            mask = model.sample_mask((5,), rng)
            assert mask.max() == np.uint32(1) << np.uint32(31)

    def test_empty_array_rejected(self, rng):
        with pytest.raises(ValueError):
            SingleBitFlipModel().sample_mask((0,), rng)


class TestStuckAt:
    def test_stuck_at_one_sets_bit(self, rng):
        model = StuckAtModel(1)
        values = np.zeros(10, dtype=np.float32)  # all bits 0
        out = model.corrupt(values, rng)
        # Exactly one bit forced to 1 (compare bit patterns: a sign-bit
        # flip yields -0.0, which numerically equals 0.0).
        assert count_set_bits(out.view(np.uint32)) == 1

    def test_stuck_at_zero_on_all_ones_pattern(self, rng):
        model = StuckAtModel(0)
        values = np.full(10, np.float32(np.nan))  # nan has many set bits
        bits_before = values.view(np.uint32).copy()
        out = model.corrupt(values, rng)
        diff = bits_before ^ out.view(np.uint32)
        assert count_set_bits(diff) <= 1  # cleared at most one bit

    def test_can_be_noop(self, rng):
        # Sticking a zero bit at 0 changes nothing — allowed by the model.
        model = StuckAtModel(0)
        values = np.zeros(4, dtype=np.float32)
        out = model.corrupt(values, rng)
        assert np.array_equal(out, values)

    def test_sample_mask_unsupported(self, rng):
        with pytest.raises(NotImplementedError):
            StuckAtModel(1).sample_mask((2,), rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            StuckAtModel(2)


class TestByteError:
    def test_corruption_confined_to_one_byte(self, rng):
        model = ByteErrorModel()
        for _ in range(20):
            mask = model.sample_mask((6,), rng)
            nonzero = mask[mask != 0]
            assert len(nonzero) <= 1
            if len(nonzero):
                word = int(nonzero[0])
                bytes_touched = sum(1 for b in range(4) if word >> (8 * b) & 0xFF)
                assert bytes_touched == 1

    def test_expected_flips(self):
        assert ByteErrorModel().expected_flips(10) == 4.0
