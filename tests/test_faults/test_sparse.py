"""SparseMask and the sparse copy-on-write apply/restore path."""

import numpy as np
import pytest

from repro.bits.float32 import apply_bit_mask
from repro.faults import (
    BernoulliBitFlipModel,
    FaultConfiguration,
    SparseMask,
    TargetSpec,
    apply_configuration,
)
from repro.faults.targets import resolve_parameter_targets
from repro.nn import paper_mlp


def random_dense_mask(shape, density, rng):
    lanes = rng.integers(0, 2**32, size=shape, dtype=np.uint64).astype(np.uint32)
    keep = rng.random(shape) < density
    return np.where(keep, lanes, np.uint32(0)).astype(np.uint32)


class TestSparseMask:
    @pytest.mark.parametrize("density", [0.0, 0.01, 0.3, 1.0])
    def test_dense_round_trip(self, density, rng):
        mask = random_dense_mask((7, 13), density, rng)
        sparse = SparseMask.from_dense(mask)
        assert np.array_equal(sparse.to_dense(), mask)
        assert sparse.count_set_bits() == int(np.unpackbits(mask.view(np.uint8)).sum())
        assert sparse.touched == int((mask != 0).sum())
        assert sparse.is_empty() == (not mask.any())

    def test_positions_round_trip(self, rng):
        shape = (5, 9)
        positions = rng.choice(np.prod(shape) * 32, size=40, replace=False)
        sparse = SparseMask.from_positions(positions, shape)
        assert np.array_equal(sparse.to_positions(), np.sort(positions))

    def test_xor_matches_dense_xor(self, rng):
        shape = (11, 6)
        a = random_dense_mask(shape, 0.2, rng)
        b = random_dense_mask(shape, 0.2, rng)
        sparse = SparseMask.from_dense(a).xor(SparseMask.from_dense(b))
        assert np.array_equal(sparse.to_dense(), a ^ b)
        # self-cancellation produces the canonical empty mask
        cancelled = SparseMask.from_dense(a).xor(SparseMask.from_dense(a))
        assert cancelled.is_empty()

    def test_out_of_range_positions_rejected(self):
        with pytest.raises(ValueError):
            SparseMask.from_positions(np.asarray([2 * 32]), (2,))


class TestConfigurationStorage:
    def test_sample_stores_sparse_and_mask_densifies(self, rng):
        model = paper_mlp(rng=0)
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(1e-3), rng)
        name = targets[0][0]
        sparse = configuration.sparse(name)
        assert isinstance(sparse, SparseMask)
        dense = configuration.mask(name)  # densifies in place
        assert np.array_equal(sparse.to_dense(), dense)
        # the sparse view of dense storage stays equivalent and non-mutating
        assert configuration.sparse(name) == sparse
        assert configuration.mask(name) is dense

    def test_dense_and_sparse_storage_compare_equal(self, rng):
        mask = random_dense_mask((4, 4), 0.2, rng)
        dense_cfg = FaultConfiguration({"w": mask})
        sparse_cfg = FaultConfiguration({"w": SparseMask.from_dense(mask)})
        assert dense_cfg == sparse_cfg
        assert dense_cfg.total_flips() == sparse_cfg.total_flips()


class TestSparseCopyOnWrite:
    @pytest.fixture()
    def model_and_targets(self):
        model = paper_mlp(rng=0).eval()
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        return model, targets

    @pytest.mark.parametrize("p", [1e-7, 1e-3, 0.5])
    def test_apply_and_restore_bit_exact(self, model_and_targets, p, rng):
        model, targets = model_and_targets
        golden = {name: param.data.copy() for name, param in targets}
        configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(p), rng)
        with apply_configuration(model, configuration):
            for name, param in targets:
                expected = apply_bit_mask(golden[name], configuration.mask(name))
                assert np.array_equal(
                    param.data.view(np.uint32), expected.view(np.uint32)
                ), f"faulted bits wrong for {name}"
        for name, param in targets:
            assert np.array_equal(param.data.view(np.uint32), golden[name].view(np.uint32))

    def test_restores_when_body_raises(self, model_and_targets, rng):
        model, targets = model_and_targets
        golden = {name: param.data.copy() for name, param in targets}
        configuration = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.01), rng)
        assert not configuration.is_empty()
        with pytest.raises(RuntimeError, match="boom"):
            with apply_configuration(model, configuration):
                raise RuntimeError("boom")
        for name, param in targets:
            assert np.array_equal(param.data.view(np.uint32), golden[name].view(np.uint32))

    def test_dense_fallback_above_density_limit(self, model_and_targets, rng):
        """A mask touching most elements takes the full-copy path — same
        faulted bits, same restoration."""
        model, targets = model_and_targets
        name, param = targets[0]
        golden = param.data.copy()
        dense = random_dense_mask(param.shape, 0.9, rng)
        configuration = FaultConfiguration(
            {name: dense} | {n: SparseMask.empty(p.shape) for n, p in targets[1:]}
        )
        with apply_configuration(model, configuration):
            expected = apply_bit_mask(golden, dense)
            assert np.array_equal(param.data.view(np.uint32), expected.view(np.uint32))
        assert np.array_equal(param.data.view(np.uint32), golden.view(np.uint32))

    def test_empty_targets_not_saved(self, model_and_targets):
        """The no-fault configuration is a true no-op (no copies, no writes)."""
        model, targets = model_and_targets
        configuration = FaultConfiguration.empty(targets)
        before = [param.data for _, param in targets]
        with apply_configuration(model, configuration):
            for (_, param), data in zip(targets, before):
                assert param.data is data
