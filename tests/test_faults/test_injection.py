"""Applying fault configurations: parameter XOR and hook injectors."""

import numpy as np
import pytest

from repro.faults import (
    ActivationInjector,
    BernoulliBitFlipModel,
    FaultConfiguration,
    InputInjector,
    TargetSpec,
    apply_configuration,
    inject_parameters,
    resolve_activation_modules,
    resolve_parameter_targets,
)
from repro.nn import paper_mlp
from repro.tensor import Tensor, no_grad


@pytest.fixture()
def model():
    return paper_mlp(rng=0).eval()


@pytest.fixture()
def batch():
    return Tensor(np.random.default_rng(0).normal(size=(6, 2)).astype(np.float32))


def _snapshot(model):
    return {n: p.data.copy() for n, p in model.named_parameters()}


class TestParameterInjection:
    def test_restores_exact_bits(self, model, batch, rng):
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        before = _snapshot(model)
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        with apply_configuration(model, cfg):
            pass
        after = _snapshot(model)
        for name in before:
            assert np.array_equal(before[name].view(np.uint32), after[name].view(np.uint32))

    def test_faults_active_inside_context(self, model, batch, rng):
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        with no_grad():
            clean = model(batch).data.copy()
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), rng)
        with apply_configuration(model, cfg), no_grad(), np.errstate(all="ignore"):
            faulted = model(batch).data.copy()
        assert not np.array_equal(clean, faulted)

    def test_restores_after_exception(self, model, rng):
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        before = _snapshot(model)
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.2), rng)
        with pytest.raises(RuntimeError):
            with apply_configuration(model, cfg):
                raise RuntimeError("mid-campaign crash")
        after = _snapshot(model)
        for name in before:
            assert np.array_equal(before[name], after[name])

    def test_inject_parameters_yields_configuration(self, model, rng):
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        with inject_parameters(model, targets, BernoulliBitFlipModel(0.1), rng) as cfg:
            assert isinstance(cfg, FaultConfiguration)
            assert set(cfg.names()) == {n for n, _ in targets}

    def test_empty_configuration_is_noop(self, model, batch):
        targets = resolve_parameter_targets(model, TargetSpec.weights_and_biases())
        with no_grad():
            clean = model(batch).data.copy()
        with apply_configuration(model, FaultConfiguration.empty(targets)), no_grad():
            faulted = model(batch).data.copy()
        assert np.array_equal(clean, faulted)


class TestActivationInjection:
    def test_corrupts_once_per_module_per_pass(self, model, batch, rng):
        modules = resolve_activation_modules(model, TargetSpec.all_surfaces())
        with ActivationInjector(modules, BernoulliBitFlipModel(0.01), rng) as injector:
            with no_grad(), np.errstate(all="ignore"):
                model(batch)
                model(batch)
        assert injector.corruption_count == 2 * len(modules)

    def test_hooks_removed_on_exit(self, model, batch, rng):
        modules = resolve_activation_modules(model, TargetSpec.all_surfaces())
        with no_grad():
            clean = model(batch).data.copy()
        with ActivationInjector(modules, BernoulliBitFlipModel(0.1), rng):
            pass
        with no_grad():
            after = model(batch).data.copy()
        assert np.array_equal(clean, after)

    def test_high_p_changes_output(self, model, batch, rng):
        modules = resolve_activation_modules(model, TargetSpec.all_surfaces())
        with no_grad():
            clean = model(batch).data.copy()
        with ActivationInjector(modules, BernoulliBitFlipModel(0.05), rng):
            with no_grad(), np.errstate(all="ignore"):
                faulted = model(batch).data.copy()
        assert not np.array_equal(clean, faulted)


class TestInputInjection:
    def test_input_corruption_changes_output(self, model, batch, rng):
        with no_grad():
            clean = model(batch).data.copy()
        with InputInjector(model, BernoulliBitFlipModel(0.05), rng) as injector:
            with no_grad(), np.errstate(all="ignore"):
                faulted = model(batch).data.copy()
        assert injector.corruption_count == 1
        assert not np.array_equal(clean, faulted)

    def test_original_input_tensor_untouched(self, model, batch, rng):
        original = batch.data.copy()
        with InputInjector(model, BernoulliBitFlipModel(0.1), rng):
            with no_grad(), np.errstate(all="ignore"):
                model(batch)
        assert np.array_equal(batch.data, original)
