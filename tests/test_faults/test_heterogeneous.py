"""Heterogeneous per-lane AVF model."""

import math

import numpy as np
import pytest

from repro.bits import count_set_bits
from repro.faults import BernoulliBitFlipModel, HeterogeneousBitFlipModel


class TestConstruction:
    def test_uniform_factory(self):
        model = HeterogeneousBitFlipModel.uniform(0.01)
        assert np.allclose(model.lane_probs, 0.01)

    def test_ecc_factory_suppresses_exponent(self):
        model = HeterogeneousBitFlipModel.ecc_on_exponent(0.01, residual_factor=0.1)
        assert np.allclose(model.lane_probs[23:31], 0.001)
        assert np.allclose(model.lane_probs[:23], 0.01)
        assert model.lane_probs[31] == 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousBitFlipModel(np.full(16, 0.1))
        with pytest.raises(ValueError):
            HeterogeneousBitFlipModel(np.full(32, 1.5))


class TestSampling:
    def test_zero_lanes_never_flip(self, rng):
        probs = np.zeros(32)
        probs[5] = 0.5
        model = HeterogeneousBitFlipModel(probs)
        mask = model.sample_mask((500,), rng)
        only_lane5 = np.uint32(1) << np.uint32(5)
        assert not np.any(mask & ~only_lane5)
        assert count_set_bits(mask) > 0

    def test_flip_counts_match_lane_means(self, rng):
        probs = np.zeros(32)
        probs[0] = 0.2
        probs[31] = 0.05
        model = HeterogeneousBitFlipModel(probs)
        n = 2000
        mask = model.sample_mask((n,), rng)
        lane0 = int(((mask >> np.uint32(0)) & np.uint32(1)).sum())
        lane31 = int(((mask >> np.uint32(31)) & np.uint32(1)).sum())
        assert abs(lane0 - 0.2 * n) < 5 * np.sqrt(0.2 * 0.8 * n)
        assert abs(lane31 - 0.05 * n) < 5 * np.sqrt(0.05 * 0.95 * n)

    def test_uniform_matches_homogeneous_statistics(self, rng):
        p = 0.02
        hetero = HeterogeneousBitFlipModel.uniform(p)
        homo = BernoulliBitFlipModel(p)
        n = 1000
        counts_hetero = [count_set_bits(hetero.sample_mask((n,), rng)) for _ in range(20)]
        counts_homo = [count_set_bits(homo.sample_mask((n,), rng)) for _ in range(20)]
        expected = n * 32 * p
        assert abs(np.mean(counts_hetero) - expected) < 0.05 * expected
        assert abs(np.mean(counts_homo) - expected) < 0.05 * expected

    def test_expected_flips(self):
        probs = np.zeros(32)
        probs[:4] = 0.25
        model = HeterogeneousBitFlipModel(probs)
        assert model.expected_flips(10) == pytest.approx(10.0)


class TestLogProb:
    def test_agrees_with_homogeneous_on_uniform(self):
        p = 0.05
        hetero = HeterogeneousBitFlipModel.uniform(p)
        homo = BernoulliBitFlipModel(p)
        mask = np.array([0b1011, 0], dtype=np.uint32)
        assert hetero.log_prob_mask(mask) == pytest.approx(homo.log_prob_mask(mask))

    def test_impossible_lane_minus_inf(self):
        probs = np.zeros(32)
        probs[0] = 0.5
        model = HeterogeneousBitFlipModel(probs)
        forbidden = np.array([0b10], dtype=np.uint32)  # lane 1 has p=0
        assert model.log_prob_mask(forbidden) == -math.inf

    def test_certain_lane(self):
        probs = np.zeros(32)
        probs[3] = 1.0
        model = HeterogeneousBitFlipModel(probs)
        required = np.array([0b1000], dtype=np.uint32)
        assert model.log_prob_mask(required) == 0.0
        assert model.log_prob_mask(np.array([0], dtype=np.uint32)) == -math.inf

    def test_ecc_model_reduces_campaign_error(self, trained_mlp, moons_eval):
        """Integration: ECC-on-exponent AVF lowers the measured error, the
        heterogeneous-model counterpart of the A5 protection result."""
        from repro.core import BayesianFaultInjector
        from repro.faults import TargetSpec

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        p = 5e-3
        raw = injector.forward_campaign(p, samples=120, fault_model=BernoulliBitFlipModel(p))
        ecc = injector.forward_campaign(
            p, samples=120, fault_model=HeterogeneousBitFlipModel.ecc_on_exponent(p), stream="ecc"
        )
        assert ecc.mean_error < raw.mean_error
