"""Burst fault model and configuration persistence."""

import numpy as np
import pytest

from repro.bits import count_set_bits
from repro.faults import (
    BernoulliBitFlipModel,
    BurstBitFlipModel,
    FaultConfiguration,
    TargetSpec,
    resolve_parameter_targets,
)
from repro.nn import paper_mlp


class TestBurstModel:
    def test_burst_bits_are_adjacent(self, rng):
        model = BurstBitFlipModel(event_probability=1.0, burst_length=3)
        mask = model.sample_mask((1,), rng)
        word = int(mask[0])
        assert word != 0
        # A contiguous run (possibly clipped at bit 31): word >> lowest set
        # bit must be of the form 0b1, 0b11, or 0b111.
        lowest = (word & -word).bit_length() - 1
        normalised = word >> lowest
        assert normalised in (0b1, 0b11, 0b111)

    def test_event_count_scales_with_probability(self, rng):
        low = BurstBitFlipModel(0.01, burst_length=2)
        high = BurstBitFlipModel(0.5, burst_length=2)
        n = 2000
        low_flips = count_set_bits(low.sample_mask((n,), rng))
        high_flips = count_set_bits(high.sample_mask((n,), rng))
        assert high_flips > 5 * low_flips

    def test_expected_flips_matches_samples(self, rng):
        model = BurstBitFlipModel(0.1, burst_length=4)
        n = 3000
        trials = 20
        counts = [count_set_bits(model.sample_mask((n,), rng)) for _ in range(trials)]
        expected = model.expected_flips(n)
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_zero_probability_empty(self, rng):
        model = BurstBitFlipModel(0.0, burst_length=2)
        assert count_set_bits(model.sample_mask((100,), rng)) == 0

    def test_single_bit_burst_reduces_to_one_flip_per_event(self, rng):
        model = BurstBitFlipModel(1.0, burst_length=1)
        mask = model.sample_mask((50,), rng)
        assert count_set_bits(mask) == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstBitFlipModel(1.5)
        with pytest.raises(ValueError):
            BurstBitFlipModel(0.1, burst_length=0)
        with pytest.raises(ValueError):
            BurstBitFlipModel(0.1, burst_length=33)

    def test_campaign_integration(self, trained_mlp, moons_eval):
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        campaign = injector.forward_campaign(
            0.01, samples=60, fault_model=BurstBitFlipModel(0.01, burst_length=4)
        )
        assert campaign.mean_error > injector.golden_error


class TestConfigurationPersistence:
    def test_roundtrip(self, tmp_path, rng):
        targets = resolve_parameter_targets(paper_mlp(rng=0), TargetSpec.weights_and_biases())
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), rng)
        path = str(tmp_path / "cfg.npz")
        cfg.save(path)
        loaded = FaultConfiguration.load(path)
        assert loaded == cfg
        assert loaded.total_flips() == cfg.total_flips()

    def test_creates_directories(self, tmp_path, rng):
        targets = resolve_parameter_targets(paper_mlp(rng=0), TargetSpec())
        cfg = FaultConfiguration.empty(targets)
        path = str(tmp_path / "deep" / "cfg.npz")
        cfg.save(path)
        assert FaultConfiguration.load(path).is_empty()

    def test_replay_gives_identical_error(self, trained_mlp, moons_eval, tmp_path, rng):
        """The persistence use-case: replaying a saved configuration must
        reproduce the exact faulted behaviour."""
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        statistic = injector.make_statistic(None, rng)
        cfg = FaultConfiguration.sample(injector.parameter_targets, BernoulliBitFlipModel(0.02), rng)
        error_before = statistic(cfg)
        path = str(tmp_path / "replay.npz")
        cfg.save(path)
        error_after = statistic(FaultConfiguration.load(path))
        assert error_before == error_after
