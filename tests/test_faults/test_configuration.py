"""FaultConfiguration algebra and statistics."""

import numpy as np
import pytest

from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, resolve_parameter_targets
from repro.nn import paper_mlp


@pytest.fixture(scope="module")
def targets():
    return resolve_parameter_targets(paper_mlp(rng=0), TargetSpec.weights_and_biases())


class TestConstruction:
    def test_sample_covers_all_targets(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        assert set(cfg.names()) == {name for name, _ in targets}
        for name, param in targets:
            assert cfg.mask(name).shape == param.shape

    def test_empty_configuration(self, targets):
        cfg = FaultConfiguration.empty(targets)
        assert cfg.is_empty()
        assert cfg.total_flips() == 0

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            FaultConfiguration({"w": np.zeros(3, dtype=np.int64)})


class TestAlgebra:
    def test_xor_with_self_is_empty(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        assert cfg.xor(cfg).is_empty()

    def test_xor_with_empty_is_identity(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        empty = FaultConfiguration.empty(targets)
        assert cfg.xor(empty) == cfg

    def test_xor_mismatched_targets_raises(self, targets):
        a = FaultConfiguration.empty(targets)
        b = FaultConfiguration.empty(targets[:1])
        with pytest.raises(KeyError):
            a.xor(b)

    def test_copy_is_independent(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        clone = cfg.copy()
        clone.mask(targets[0][0])[...] = 0
        assert cfg != clone or cfg.total_flips() == 0

    def test_equality(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.1), rng)
        assert cfg == cfg.copy()
        assert cfg != FaultConfiguration.empty(targets)
        assert (cfg == object()) is False or True  # NotImplemented path tolerated


class TestStatistics:
    def test_total_flips_sums_per_target(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), rng)
        per_target = cfg.flips_per_target()
        assert cfg.total_flips() == sum(per_target.values())

    def test_flip_positions_counts(self, targets, rng):
        cfg = FaultConfiguration.sample(targets, BernoulliBitFlipModel(0.05), rng)
        positions = cfg.flip_positions()
        assert sum(len(v) for v in positions.values()) == cfg.total_flips()

    def test_log_prob_is_sum_over_targets(self, targets, rng):
        model = BernoulliBitFlipModel(0.05)
        cfg = FaultConfiguration.sample(targets, model, rng)
        expected = sum(model.log_prob_mask(cfg.mask(name)) for name in cfg.names())
        assert cfg.log_prob(model) == pytest.approx(expected)

    def test_repr(self, targets):
        assert "targets=4" in repr(FaultConfiguration.empty(targets))
