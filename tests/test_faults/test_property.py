"""Property-based tests for fault configurations and models (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.faults import BernoulliBitFlipModel, FaultConfiguration

_mask_arrays = hnp.arrays(
    dtype=np.uint32,
    shape=st.integers(min_value=1, max_value=12),
    elements=st.integers(min_value=0, max_value=2**32 - 1),
)


def _config(masks_dict):
    return FaultConfiguration({k: np.asarray(v, dtype=np.uint32) for k, v in masks_dict.items()})


class TestConfigurationAlgebra:
    @given(_mask_arrays, st.data())
    @settings(max_examples=40, deadline=None)
    def test_xor_commutative(self, mask_a, data):
        mask_b = data.draw(
            hnp.arrays(dtype=np.uint32, shape=mask_a.shape,
                       elements=st.integers(min_value=0, max_value=2**32 - 1))
        )
        a = _config({"w": mask_a})
        b = _config({"w": mask_b})
        assert a.xor(b) == b.xor(a)

    @given(_mask_arrays)
    @settings(max_examples=40, deadline=None)
    def test_xor_self_inverse(self, mask):
        cfg = _config({"w": mask})
        assert cfg.xor(cfg).is_empty()

    @given(_mask_arrays)
    @settings(max_examples=40, deadline=None)
    def test_identity_element(self, mask):
        cfg = _config({"w": mask})
        zero = _config({"w": np.zeros_like(mask)})
        assert cfg.xor(zero) == cfg

    @given(_mask_arrays, st.data())
    @settings(max_examples=30, deadline=None)
    def test_flip_count_triangle_inequality(self, mask_a, data):
        mask_b = data.draw(
            hnp.arrays(dtype=np.uint32, shape=mask_a.shape,
                       elements=st.integers(min_value=0, max_value=2**32 - 1))
        )
        a = _config({"w": mask_a})
        b = _config({"w": mask_b})
        assert a.xor(b).total_flips() <= a.total_flips() + b.total_flips()

    @given(_mask_arrays)
    @settings(max_examples=40, deadline=None)
    def test_positions_count_matches_flips(self, mask):
        cfg = _config({"w": mask})
        positions = cfg.flip_positions()["w"]
        assert len(positions) == cfg.total_flips()


class TestBernoulliModelProperties:
    @given(
        st.floats(min_value=1e-4, max_value=0.5),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_log_prob_of_sampled_mask_finite(self, p, n, seed):
        model = BernoulliBitFlipModel(p)
        rng = np.random.default_rng(seed)
        mask = model.sample_mask((n,), rng)
        assert np.isfinite(model.log_prob_mask(mask))

    @given(st.floats(min_value=1e-4, max_value=0.4), st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_empty_mask_is_modal_for_small_p(self, p, n):
        """Under p < 0.5 the all-zeros mask is the single most likely mask."""
        model = BernoulliBitFlipModel(p)
        empty = np.zeros(n, dtype=np.uint32)
        one_flip = empty.copy()
        one_flip[0] = 1
        assert model.log_prob_mask(empty) > model.log_prob_mask(one_flip)

    @given(st.floats(min_value=1e-5, max_value=0.2), st.integers(min_value=1, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_expected_flips_formula(self, p, n):
        model = BernoulliBitFlipModel(p)
        assert model.expected_flips(n) == pytest.approx(n * 32 * p)
