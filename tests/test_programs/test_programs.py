"""Differentiable programs: behaviour and BDLFI integration."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector
from repro.faults import TargetSpec
from repro.programs import (
    FIRDetector,
    PIDController,
    PolynomialClassifier,
    make_filter_dataset,
    make_pid_dataset,
    make_polynomial_dataset,
)
from repro.tensor import Tensor, no_grad


class TestPIDController:
    def test_default_gains_settle_typical_setpoints(self):
        pid = PIDController()
        x, labels = make_pid_dataset(pid, n=40, rng=0)
        assert (labels == 0).mean() > 0.8  # mostly within spec

    def test_zero_gains_fail_spec(self):
        pid = PIDController(kp=0.0, ki=0.0, kd=0.0)
        setpoints = np.full((8, 1), 1.0, dtype=np.float32)
        with no_grad():
            logits = pid(Tensor(setpoints))
        assert (logits.data.argmax(axis=1) == 1).all()  # no control -> out of spec

    def test_differentiable_in_gains(self):
        pid = PIDController()
        setpoints = Tensor(np.full((4, 1), 1.0, dtype=np.float32))
        error = pid.simulate(setpoints).sum()
        error.backward()
        assert pid.kp.grad is not None
        assert np.isfinite(pid.kp.grad).all()

    def test_parameters_are_fault_targets(self):
        pid = PIDController()
        names = {name for name, _ in pid.named_parameters()}
        assert names == {"kp", "ki", "kd"}

    def test_validation(self):
        with pytest.raises(ValueError):
            PIDController(horizon=2)
        with pytest.raises(ValueError):
            PIDController(dt=0.0)
        with pytest.raises(ValueError):
            make_pid_dataset(PIDController(), n=0)
        with pytest.raises(ValueError):
            make_pid_dataset(PIDController(), setpoint_range=(2.0, 1.0))


class TestFIRDetector:
    def test_dataset_has_both_classes(self):
        detector = FIRDetector()
        _, labels = make_filter_dataset(detector, n=80, rng=1)
        assert 0 < (labels == 0).mean() < 1

    def test_filtered_length(self):
        detector = FIRDetector(n_taps=5)
        signals = Tensor(np.zeros((2, 20), dtype=np.float32))
        assert detector.filtered(signals).shape == (2, 16)

    def test_lowpass_attenuates_noise_energy(self):
        detector = FIRDetector(n_taps=9)
        rng = np.random.default_rng(0)
        noise = Tensor(rng.normal(0, 1, size=(4, 64)).astype(np.float32))
        with no_grad():
            smoothed = detector.filtered(noise)
        assert (smoothed.data**2).mean() < (noise.data**2).mean()

    def test_short_signal_rejected(self):
        detector = FIRDetector(n_taps=9)
        with pytest.raises(ValueError):
            detector.filtered(Tensor(np.zeros((1, 4), dtype=np.float32)))

    def test_validation(self):
        with pytest.raises(ValueError):
            FIRDetector(n_taps=1)
        with pytest.raises(ValueError):
            make_filter_dataset(FIRDetector(), n=10, event_fraction=2.0)


class TestPolynomialClassifier:
    def test_sign_classification(self):
        # p(x) = x: positive -> class 0, negative -> class 1.
        poly = PolynomialClassifier([0.0, 1.0])
        x = Tensor(np.asarray([[2.0], [-2.0]], dtype=np.float32))
        with no_grad():
            predictions = poly(x).data.argmax(axis=1)
        assert predictions.tolist() == [0, 1]

    def test_horner_matches_numpy_polyval(self):
        coefficients = [0.5, -1.0, 0.25, 2.0]
        poly = PolynomialClassifier(coefficients)
        xs = np.linspace(-1.5, 1.5, 7).astype(np.float32)
        with no_grad():
            margins = poly(Tensor(xs.reshape(-1, 1))).data[:, 0]
        expected = np.polyval(list(reversed(coefficients)), xs)
        assert np.allclose(margins, expected, atol=1e-4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolynomialClassifier([])
        with pytest.raises(ValueError):
            make_polynomial_dataset(PolynomialClassifier([1.0]), n=0)


class TestBDLFIOnPrograms:
    """The paper's generality claim: the whole pipeline runs unchanged."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda: (lambda pid: (pid, *make_pid_dataset(pid, n=32, rng=0)))(PIDController()),
            lambda: (lambda det: (det, *make_filter_dataset(det, n=48, rng=1)))(FIRDetector()),
            lambda: (lambda poly: (poly, *make_polynomial_dataset(poly, n=64, rng=2)))(
                PolynomialClassifier([0.5, -1.0, 0.0, 1.0])
            ),
        ],
        ids=["pid", "fir", "polynomial"],
    )
    def test_campaigns_run_and_faults_degrade(self, build):
        program, inputs, labels = build()
        injector = BayesianFaultInjector(
            program, inputs, labels, spec=TargetSpec.weights_and_biases(), seed=0
        )
        assert injector.golden_error == pytest.approx(0.0)  # labels ARE the golden verdicts
        low = injector.forward_campaign(1e-5, samples=40)
        high = injector.forward_campaign(3e-2, samples=40)
        assert low.mean_error <= high.mean_error
        assert high.mean_error > 0.0  # faults do corrupt program verdicts

    def test_mcmc_campaign_on_program(self):
        pid = PIDController()
        inputs, labels = make_pid_dataset(pid, n=32, rng=0)
        injector = BayesianFaultInjector(pid, inputs, labels, spec=TargetSpec.weights_and_biases(), seed=0)
        campaign = injector.mcmc_campaign(1e-2, chains=2, steps=40)
        assert campaign.completeness is not None

    def test_sensitivity_on_program(self):
        pid = PIDController()
        inputs, labels = make_pid_dataset(pid, n=16, rng=0)
        injector = BayesianFaultInjector(pid, inputs, labels, spec=TargetSpec.weights_and_biases(), seed=0)
        from repro.sensitivity import TaylorSensitivity

        sensitivity = TaylorSensitivity(pid, inputs, labels, injector.parameter_targets)
        top = sensitivity.top_sites(3)
        assert all(site.field == "exponent" for site in top)
