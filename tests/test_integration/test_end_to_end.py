"""Full-pipeline integration: train → checkpoint → inject → compare."""

import numpy as np
import pytest

from repro.baselines import RandomFaultInjector, compare_estimators
from repro.core import BayesianFaultInjector
from repro.data import ArrayDataset, DataLoader, gaussian_blobs
from repro.faults import SingleBitFlipModel, TargetSpec
from repro.nn import MLP
from repro.nn.models import resnet18_cifar_small
from repro.train import Adam, Trainer, load_checkpoint, save_checkpoint


class TestTrainCheckpointInject:
    def test_pipeline(self, tmp_path):
        # 1. Train a golden network.
        x, y = gaussian_blobs(400, scale=0.4, rng=0)
        model = MLP(2, (16,), 3, rng=0)
        trainer = Trainer(model, Adam(model.parameters(), lr=0.01))
        result = trainer.fit(
            DataLoader(ArrayDataset(x, y), batch_size=32, shuffle=True, rng=1), epochs=20
        )
        assert result.final_train_accuracy > 0.9

        # 2. Checkpoint and reload into a fresh instance.
        path = str(tmp_path / "golden.npz")
        save_checkpoint(model, path, accuracy=result.final_train_accuracy)
        golden = MLP(2, (16,), 3, rng=99)
        metadata = load_checkpoint(golden, path)
        assert metadata["accuracy"] > 0.9

        # 3. Campaign on the reloaded golden network.
        eval_x, eval_y = gaussian_blobs(200, scale=0.4, rng=7)
        injector = BayesianFaultInjector(
            golden, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        low = injector.forward_campaign(1e-5, samples=60)
        high = injector.forward_campaign(5e-2, samples=60)
        assert high.mean_error > low.mean_error


class TestBDLFIMatchesTraditionalFI:
    """E7 in miniature: under a matched single-bit-flip fault model, BDLFI's
    exceedance estimate and the traditional injector's SDC rate agree."""

    def test_agreement(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        spec = TargetSpec.weights_and_biases()
        n = 400

        traditional = RandomFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=1)
        trad_campaign = traditional.run(n)

        injector = BayesianFaultInjector(trained_mlp, eval_x, eval_y, spec=spec, seed=2)
        # Matched fault model: exactly one flip per draw, uniform over the
        # whole space. SingleBitFlipModel picks per-tensor; sampling via the
        # stratified trick (k=1) matches the baseline's element weighting.
        from repro.core import StratifiedErrorEstimator

        estimator = StratifiedErrorEstimator(injector, samples_per_stratum=n)
        values = estimator.conditional_error_samples(1)
        bdlfi_sdc = int((values > injector.golden_error).sum())

        trad_sdc = int(round(trad_campaign.sdc_rate * n))
        comparison = compare_estimators("bdlfi", bdlfi_sdc, n, "random-fi", trad_sdc, n)
        assert comparison.agree, comparison.summary()


class TestResNetInjectionSmoke:
    """The full ResNet-18 topology survives an injection campaign."""

    def test_small_resnet_campaign(self, tiny_images):
        x, y = tiny_images
        model = resnet18_cifar_small(rng=0).eval()
        injector = BayesianFaultInjector(
            model, x, y, spec=TargetSpec(include_layers=("stages.0.0.*", "fc")), seed=0
        )
        campaign = injector.forward_campaign(1e-3, samples=10)
        assert 0.0 <= campaign.mean_error <= 1.0
        assert campaign.total_evaluations == 10


class TestReproducibility:
    def test_identical_seeds_identical_results(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval

        def run():
            injector = BayesianFaultInjector(
                trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=7
            )
            sweep_errors = [
                injector.forward_campaign(p, samples=30).mean_error for p in (1e-3, 1e-2)
            ]
            mcmc = injector.mcmc_campaign(1e-2, chains=2, steps=30)
            return sweep_errors, mcmc.chains.matrix()

        (errors_a, matrix_a) = run()
        (errors_b, matrix_b) = run()
        assert errors_a == errors_b
        assert np.array_equal(matrix_a, matrix_b)

    def test_different_seeds_differ(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        a = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=1).forward_campaign(
            1e-2, samples=30
        )
        b = BayesianFaultInjector(trained_mlp, eval_x, eval_y, seed=2).forward_campaign(
            1e-2, samples=30
        )
        assert not np.array_equal(a.chains.matrix(), b.chains.matrix())
