"""End-to-end reproduction of the paper's three findings on the MLP.

These are the integration tests that tie the whole stack together: train a
golden network, run BDLFI campaigns, and assert the *shape* of the paper's
results (not absolute numbers — our substrate is synthetic).
"""

import numpy as np
import pytest

from repro.core import (
    BayesianFaultInjector,
    DecisionBoundaryAnalysis,
    LayerwiseCampaign,
    ProbabilitySweep,
)
from repro.faults import BernoulliBitFlipModel, TargetSpec


@pytest.fixture(scope="module")
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=2019
    )


class TestFindingF1DecisionBoundary:
    """Faults are most damaging near the decision boundary (Fig. 1 ③)."""

    def test_flip_probability_decays_with_distance(self, trained_mlp):
        analysis = DecisionBoundaryAnalysis(
            trained_mlp,
            bounds=(-1.5, 2.5, -1.2, 1.7),
            resolution=36,
            fault_model=BernoulliBitFlipModel(1e-3),
            seed=1,
        )
        bmap = analysis.run(samples=80)
        corr = bmap.distance_correlation()
        assert corr["spearman_rho"] < -0.15
        assert corr["spearman_p"] < 1e-4
        bands = bmap.band_summary(5)
        # Nearest band must be the most fault-sensitive.
        flips = [band["mean_flip_probability"] for band in bands]
        assert flips[0] == max(flips)


class TestFindingF2TwoRegimes:
    """Error vs flip probability has a flat regime, a knee, and a steep
    regime (Fig. 2)."""

    @pytest.fixture(scope="class")
    def sweep(self, injector):
        return ProbabilitySweep(
            injector, p_values=tuple(np.logspace(-5, -1, 9)), samples=120, chains=2
        ).run()

    def test_two_regimes_detected(self, sweep):
        fit = sweep.fit_regimes()
        assert fit.has_two_regimes
        assert 1e-5 < fit.knee_p < 1e-1

    def test_flat_regime_close_to_golden(self, sweep):
        first = sweep.points[0]
        assert first.mean_error == pytest.approx(sweep.golden_error, abs=0.02)

    def test_steep_regime_far_from_golden(self, sweep):
        last = sweep.points[-1]
        assert last.mean_error > sweep.golden_error + 0.15

    def test_errors_nondecreasing_up_to_noise(self, sweep):
        errors = sweep.errors()
        assert np.all(np.diff(errors) > -0.05)


class TestFindingF3LayerDepth:
    """No depth → error relationship (Fig. 3) — verified here on the MLP's
    two layers (the full ResNet version runs in the benchmark harness)."""

    def test_both_layers_vulnerable(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval
        campaign = LayerwiseCampaign(
            trained_mlp, eval_x, eval_y, p=5e-3, samples=80, seed=3
        ).run()
        errors = campaign.errors()
        golden = campaign.results[0].campaign.golden_error
        # Depth does not shield: the last layer is at least comparably
        # affected to the first.
        assert all(err > golden for err in errors)


class TestCompletenessWorkflow:
    """Advantage #1: the adaptive campaign stops once mixed, and its
    estimate matches a much larger fixed-budget campaign."""

    def test_adaptive_matches_fixed_budget(self, injector):
        from repro.mcmc import CompletenessCriterion

        criterion = CompletenessCriterion(stderr_tolerance=0.015, min_ess=80)
        adaptive = injector.run_until_complete(
            5e-3, criterion=criterion, chains=2, batch_steps=50, max_steps=600
        )
        reference = injector.forward_campaign(5e-3, samples=800, stream="reference")
        assert adaptive.completeness.complete
        assert adaptive.mean_error == pytest.approx(reference.mean_error, abs=0.05)
        # The adaptive campaign should not need the full reference budget.
        assert adaptive.total_evaluations <= 2 * reference.total_evaluations
