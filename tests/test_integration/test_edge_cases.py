"""Cross-cutting edge cases not covered by per-module suites."""

import numpy as np
import pytest

from repro.core import BayesianFaultInjector, OutcomeCampaign
from repro.faults import (
    BernoulliBitFlipModel,
    BurstBitFlipModel,
    FaultConfiguration,
    HeterogeneousBitFlipModel,
    TargetSpec,
)
from repro.mcmc import PriorTarget, TemperedErrorTarget


@pytest.fixture()
def injector(trained_mlp, moons_eval):
    eval_x, eval_y = moons_eval
    return BayesianFaultInjector(
        trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
    )


class TestTargetsAPI:
    def test_prior_target_importance_weight_zero(self, injector):
        target = PriorTarget(BernoulliBitFlipModel(1e-3))
        cfg = FaultConfiguration.empty(injector.parameter_targets)
        assert target.importance_log_weight(cfg, 0.37) == 0.0
        assert np.isfinite(target.log_density(cfg))

    def test_tempered_target_density_decomposes(self, injector):
        model = BernoulliBitFlipModel(1e-3)
        stat = lambda cfg: 0.25
        target = TemperedErrorTarget(model, stat, beta=4.0)
        cfg = FaultConfiguration.empty(injector.parameter_targets)
        expected = cfg.log_prob(model) + 4.0 * 0.25
        assert target.log_density(cfg) == pytest.approx(expected)
        assert target.importance_log_weight(cfg, 0.25) == pytest.approx(-1.0)

    def test_tempered_beta_validation(self):
        with pytest.raises(ValueError):
            TemperedErrorTarget(BernoulliBitFlipModel(1e-3), lambda c: 0.0, beta=-1.0)


class TestAlternativeModelsThroughCampaigns:
    """Every mask-based fault model must compose with the full campaign API."""

    @pytest.mark.parametrize(
        "fault_model",
        [
            HeterogeneousBitFlipModel.ecc_on_exponent(5e-3),
            BurstBitFlipModel(5e-3, burst_length=3),
            BernoulliBitFlipModel(5e-3, bits=(29, 30, 31)),
        ],
        ids=["heterogeneous-ecc", "burst", "lane-restricted"],
    )
    def test_forward_campaign_accepts_model(self, injector, fault_model):
        campaign = injector.forward_campaign(5e-3, samples=40, fault_model=fault_model)
        assert 0.0 <= campaign.mean_error <= 1.0
        assert campaign.total_evaluations == 40

    def test_outcome_campaign_with_custom_model(self, injector):
        campaign = OutcomeCampaign(injector).run(
            5e-3, samples=40, fault_model=BurstBitFlipModel(5e-3, burst_length=2)
        )
        assert campaign.masked_rate + campaign.sdc_rate + campaign.due_rate == pytest.approx(1.0)


class TestInjectorStreamIsolation:
    def test_named_streams_are_independent(self, injector):
        a = injector.forward_campaign(1e-3, samples=30, stream="alpha")
        b = injector.forward_campaign(1e-3, samples=30, stream="beta")
        assert not np.array_equal(a.chains.matrix(), b.chains.matrix())

    def test_same_stream_same_result(self, trained_mlp, moons_eval):
        eval_x, eval_y = moons_eval

        def run():
            injector = BayesianFaultInjector(
                trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=5
            )
            return injector.forward_campaign(1e-3, samples=30, stream="gamma").chains.matrix()

        assert np.array_equal(run(), run())


class TestGoldenStateInvariants:
    def test_many_campaign_kinds_leave_weights_untouched(self, trained_mlp, moons_eval):
        """The strongest hygiene invariant: after every campaign style, the
        golden bit patterns are exactly intact."""
        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=9
        )
        before = {
            name: param.data.view(np.uint32).copy()
            for name, param in injector.parameter_targets
        }
        injector.forward_campaign(1e-2, samples=20)
        injector.mcmc_campaign(1e-2, chains=2, steps=10)
        injector.tempered_campaign(1e-2, beta=2.0, chains=2, steps=10)
        injector.parallel_tempering_campaign(1e-2, chains=1, sweeps=10)
        OutcomeCampaign(injector).run(1e-2, samples=10)
        for name, param in injector.parameter_targets:
            assert np.array_equal(before[name], param.data.view(np.uint32)), name
