"""Every example script must at least parse and compile.

Full executions run minutes; compilation catches import typos, stale API
references, and syntax errors cheaply on every test run. (The benchmark
suite and the smoke runs in CI-style scripts execute them for real.)
"""

import os
import py_compile

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_compiles(script, tmp_path):
    path = os.path.join(EXAMPLES_DIR, script)
    py_compile.compile(path, cfile=str(tmp_path / (script + "c")), doraise=True)


def test_expected_examples_present():
    names = {script[:-3] for script in EXAMPLES}
    assert {
        "quickstart",
        "decision_boundary",
        "flip_sweep",
        "resnet_layerwise",
        "completeness",
        "baseline_comparison",
        "control_loop",
        "error_propagation",
        "assessment",
    } <= names


def test_examples_reference_only_public_api():
    """Examples must not import private (underscore) names from repro."""
    import re

    pattern = re.compile(r"from repro[.\w]* import (.+)")
    for script in EXAMPLES:
        with open(os.path.join(EXAMPLES_DIR, script), encoding="utf-8") as handle:
            for line in handle:
                match = pattern.search(line)
                if match:
                    imported = [item.strip() for item in match.group(1).split(",")]
                    private = [name for name in imported if name.startswith("_")]
                    assert not private, f"{script} imports private names: {private}"
