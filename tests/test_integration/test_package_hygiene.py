"""Package hygiene: no orphaned directories masquerading as packages.

A directory under ``src/repro`` (or ``tests``) containing only
``__pycache__`` residue — e.g. left behind by a deleted module whose
``.pyc`` files survived — is silently importable and shadows honest
``ModuleNotFoundError``s. These guards fail the suite the moment such an
orphan (re)appears.
"""

import os

import repro

SRC_ROOT = os.path.dirname(os.path.abspath(repro.__file__))
TESTS_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

IGNORED = {"__pycache__", ".pytest_cache", ".hypothesis"}


def _package_dirs(root: str) -> list[str]:
    found = []
    for dirpath, dirnames, _ in os.walk(root):
        dirnames[:] = [name for name in dirnames if name not in IGNORED]
        found.extend(os.path.join(dirpath, name) for name in dirnames)
    return found


def _has_python_sources(directory: str) -> bool:
    return any(entry.endswith(".py") for entry in os.listdir(directory))


class TestNoOrphanPackages:
    def test_every_repro_package_dir_has_sources(self):
        orphans = [
            path for path in _package_dirs(SRC_ROOT) if not _has_python_sources(path)
        ]
        assert not orphans, (
            f"directories under src/repro with no .py sources (stale leftovers "
            f"from a deleted module?): {orphans} — delete them; __pycache__ "
            f"residue makes them importable"
        )

    def test_every_test_dir_has_sources(self):
        orphans = [
            path for path in _package_dirs(TESTS_ROOT) if not _has_python_sources(path)
        ]
        assert not orphans, f"test directories with no .py sources: {orphans}"

    def test_deleted_service_packages_stay_deleted(self):
        # the PR that added this guard removed pycache-only orphans at
        # these exact paths; they must not resurface without real sources
        assert not os.path.isdir(os.path.join(SRC_ROOT, "service")) or _has_python_sources(
            os.path.join(SRC_ROOT, "service")
        )
        assert not os.path.isdir(os.path.join(TESTS_ROOT, "test_service")) or (
            _has_python_sources(os.path.join(TESTS_ROOT, "test_service"))
        )
