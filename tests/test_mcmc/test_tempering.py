"""Parallel tempering over fault space."""

import numpy as np
import pytest

from repro.faults import BernoulliBitFlipModel, TargetSpec, resolve_parameter_targets
from repro.mcmc import ParallelTemperingSampler, SingleBitToggle
from repro.nn import paper_mlp


@pytest.fixture(scope="module")
def targets():
    return resolve_parameter_targets(paper_mlp(rng=0), TargetSpec.weights_and_biases())


def _total_bits(targets):
    return sum(param.size for _, param in targets) * 32


def _normalised_flips(targets):
    n = _total_bits(targets)
    return lambda cfg: cfg.total_flips() / n


def _sampler(targets, p=0.01, betas=(0.0, 200.0, 1000.0)):
    model = BernoulliBitFlipModel(p)
    return ParallelTemperingSampler(
        targets, model, _normalised_flips(targets), SingleBitToggle(targets), betas=betas
    ), model


class TestConstruction:
    def test_ladder_validation(self, targets):
        model = BernoulliBitFlipModel(0.01)
        stat = _normalised_flips(targets)
        proposal = SingleBitToggle(targets)
        with pytest.raises(ValueError, match="beta=0"):
            ParallelTemperingSampler(targets, model, stat, proposal, betas=(1.0, 2.0))
        with pytest.raises(ValueError, match="increasing"):
            ParallelTemperingSampler(targets, model, stat, proposal, betas=(0.0, 2.0, 2.0))
        with pytest.raises(ValueError, match="two rungs"):
            ParallelTemperingSampler(targets, model, stat, proposal, betas=(0.0,))
        with pytest.raises(ValueError):
            ParallelTemperingSampler([], model, stat, proposal)

    def test_run_validation(self, targets):
        sampler, _ = _sampler(targets)
        with pytest.raises(ValueError):
            sampler.run(chains=0, sweeps=10, rng=0)
        with pytest.raises(ValueError):
            sampler.run_chain(0, np.random.default_rng(0))


class TestSampling:
    def test_hot_rungs_have_higher_statistic(self, targets):
        sampler, _ = _sampler(targets, p=0.005)
        result = sampler.run(chains=2, sweeps=200, rng=0)
        means = result.rung_means
        assert means[-1] > means[0]  # hottest rung biased toward more flips

    def test_cold_rung_matches_prior_mean(self, targets):
        p = 0.01
        sampler, model = _sampler(targets, p=p)
        result = sampler.run(chains=4, sweeps=300, rng=1)
        expected = p  # normalised flips have prior mean exactly p
        cold_mean = float(result.cold_chains.matrix(0.25).mean())
        assert cold_mean == pytest.approx(expected, rel=0.15)

    def test_swap_acceptance_in_unit_interval(self, targets):
        sampler, _ = _sampler(targets)
        result = sampler.run(chains=2, sweeps=100, rng=2)
        assert 0.0 <= result.swap_acceptance <= 1.0

    def test_reproducible(self, targets):
        sampler, _ = _sampler(targets)
        a = sampler.run(chains=2, sweeps=50, rng=3)
        b = sampler.run(chains=2, sweeps=50, rng=3)
        assert np.array_equal(a.cold_chains.matrix(), b.cold_chains.matrix())
        assert a.swap_acceptance == b.swap_acceptance


class TestInjectorIntegration:
    def test_campaign_agrees_with_forward(self, trained_mlp, moons_eval):
        from repro.core import BayesianFaultInjector

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y, spec=TargetSpec.weights_and_biases(), seed=0
        )
        p = 1e-2
        forward = injector.forward_campaign(p, samples=300)
        # hazard rows counting as errors widens the statistic's spread, so
        # the MCMC side needs a larger budget for the means to meet inside
        # the same tolerance
        tempered = injector.parallel_tempering_campaign(p, chains=4, sweeps=400)
        assert tempered.mean_error == pytest.approx(forward.mean_error, abs=0.07)
        assert tempered.method.startswith("tempering")

    def test_requires_parameter_surfaces(self, trained_mlp, moons_eval):
        from repro.core import BayesianFaultInjector
        from repro.faults import FaultSurface

        eval_x, eval_y = moons_eval
        injector = BayesianFaultInjector(
            trained_mlp, eval_x, eval_y,
            spec=TargetSpec(surfaces=frozenset({FaultSurface.INPUTS})), seed=0,
        )
        with pytest.raises(ValueError, match="parameter fault surfaces"):
            injector.parallel_tempering_campaign(1e-3)
