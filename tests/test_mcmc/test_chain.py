"""Chain and ChainSet storage."""

import numpy as np
import pytest

from repro.mcmc import Chain, ChainSet


def _chain(values, chain_id=0):
    c = Chain(chain_id)
    for i, v in enumerate(values):
        c.record(v, flips=i, accepted=(i % 2 == 0))
    return c


class TestChain:
    def test_record_and_accessors(self):
        c = _chain([0.1, 0.2, 0.3])
        assert len(c) == 3
        assert np.allclose(c.values, [0.1, 0.2, 0.3])
        assert np.array_equal(c.flips, [0, 1, 2])

    def test_acceptance_rate(self):
        c = _chain([0.0] * 4)
        assert c.acceptance_rate == pytest.approx(0.5)

    def test_empty_acceptance_is_nan(self):
        assert np.isnan(Chain().acceptance_rate)

    def test_tail_discards_burn_in(self):
        c = _chain(list(range(10)))
        assert np.array_equal(c.tail(0.3), np.arange(3, 10, dtype=float))
        with pytest.raises(ValueError):
            c.tail(1.0)


class TestChainSet:
    def test_matrix_shape(self):
        cs = ChainSet([_chain([1, 2, 3, 4]), _chain([5, 6, 7, 8], 1)])
        assert cs.matrix().shape == (2, 4)
        assert cs.steps == 4

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            ChainSet([_chain([1, 2]), _chain([1, 2, 3])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChainSet([])

    def test_pooled_mean(self):
        cs = ChainSet([_chain([1.0, 1.0]), _chain([3.0, 3.0], 1)])
        assert cs.mean() == pytest.approx(2.0)
        assert cs.pooled().shape == (4,)
