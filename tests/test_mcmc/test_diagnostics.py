"""Convergence diagnostics on chains with known properties."""

import numpy as np
import pytest

from repro.mcmc import (
    autocorrelation,
    effective_sample_size,
    geweke_z,
    monte_carlo_standard_error,
    split_r_hat,
)


def _ar1(phi, n, chains=4, seed=0):
    """AR(1) chains with autocorrelation phi (stationary start)."""
    rng = np.random.default_rng(seed)
    out = np.zeros((chains, n))
    for c in range(chains):
        x = rng.normal() / np.sqrt(1 - phi**2)
        for t in range(n):
            x = phi * x + rng.normal()
            out[c, t] = x
    return out


class TestAutocorrelation:
    def test_lag_zero_is_one(self):
        acf = autocorrelation(np.random.default_rng(0).normal(size=200))
        assert acf[0] == pytest.approx(1.0)

    def test_iid_decays_immediately(self):
        acf = autocorrelation(np.random.default_rng(1).normal(size=5000), max_lag=5)
        assert np.all(np.abs(acf[1:]) < 0.05)

    def test_ar1_matches_theory(self):
        series = _ar1(0.8, 20000, chains=1, seed=2)[0]
        acf = autocorrelation(series, max_lag=3)
        assert acf[1] == pytest.approx(0.8, abs=0.05)
        assert acf[2] == pytest.approx(0.64, abs=0.05)

    def test_constant_series(self):
        acf = autocorrelation(np.ones(50), max_lag=3)
        assert acf[0] == 1.0
        assert np.all(acf[1:] == 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(1))


class TestRHat:
    def test_iid_chains_near_one(self):
        chains = np.random.default_rng(3).normal(size=(4, 1000))
        assert split_r_hat(chains) == pytest.approx(1.0, abs=0.02)

    def test_shifted_chains_detected(self):
        rng = np.random.default_rng(4)
        chains = rng.normal(size=(4, 500))
        chains[0] += 5.0  # one chain stuck in a different mode
        assert split_r_hat(chains) > 1.5

    def test_intra_chain_drift_detected(self):
        # Split R-hat also catches trends within a single chain.
        rng = np.random.default_rng(5)
        drifting = rng.normal(size=(4, 500)) + np.linspace(0, 5, 500)
        assert split_r_hat(drifting) > 1.2

    def test_constant_chains_converged(self):
        assert split_r_hat(np.ones((3, 100))) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            split_r_hat(np.zeros(10))
        with pytest.raises(ValueError):
            split_r_hat(np.zeros((2, 3)))


class TestESS:
    def test_iid_ess_close_to_n(self):
        chains = np.random.default_rng(6).normal(size=(4, 500))
        ess = effective_sample_size(chains)
        assert 1400 < ess <= 2300  # near m*n = 2000

    def test_correlated_chains_shrink_ess(self):
        phi = 0.9
        chains = _ar1(phi, 800, seed=7)
        ess = effective_sample_size(chains)
        expected = 4 * 800 * (1 - phi) / (1 + phi)  # ≈ 168
        assert 0.4 * expected < ess < 2.5 * expected

    def test_single_chain_accepted(self):
        ess = effective_sample_size(np.random.default_rng(8).normal(size=1000))
        assert ess > 500

    def test_constant_chain(self):
        assert effective_sample_size(np.ones((2, 100))) == 200.0

    def test_ordering_iid_vs_correlated(self):
        iid = effective_sample_size(np.random.default_rng(9).normal(size=(2, 400)))
        corr = effective_sample_size(_ar1(0.95, 400, chains=2, seed=10))
        assert corr < iid


class TestGewekeAndMCSE:
    def test_stationary_chain_small_z(self):
        z = geweke_z(np.random.default_rng(11).normal(size=2000))
        assert abs(z) < 3.0

    def test_drifting_chain_large_z(self):
        chain = np.random.default_rng(12).normal(size=1000) + np.linspace(0, 4, 1000)
        assert abs(geweke_z(chain)) > 4.0

    def test_geweke_validation(self):
        with pytest.raises(ValueError):
            geweke_z(np.zeros(5))
        with pytest.raises(ValueError):
            geweke_z(np.zeros(100), first=0.6, last=0.6)

    def test_mcse_shrinks_with_samples(self):
        rng = np.random.default_rng(13)
        small = monte_carlo_standard_error(rng.normal(size=(2, 100)))
        large = monte_carlo_standard_error(rng.normal(size=(2, 10000)))
        assert large < small

    def test_mcse_approximates_theory_for_iid(self):
        chains = np.random.default_rng(14).normal(size=(4, 2000))
        mcse = monte_carlo_standard_error(chains)
        assert mcse == pytest.approx(1.0 / np.sqrt(8000), rel=0.3)
