"""Completeness criterion — the paper's stop-when-mixed rule."""

import numpy as np
import pytest

from repro.mcmc import Chain, ChainSet, CompletenessCriterion


def _chain_set(matrix):
    chains = []
    for i, row in enumerate(matrix):
        c = Chain(i)
        for v in row:
            c.record(float(v), flips=0)
        chains.append(c)
    return ChainSet(chains)


class TestCriterion:
    def test_well_mixed_iid_chains_complete(self):
        rng = np.random.default_rng(0)
        cs = _chain_set(0.1 + 0.01 * rng.normal(size=(4, 800)))
        report = CompletenessCriterion(stderr_tolerance=0.01).assess(cs)
        assert report.complete
        assert report.r_hat < 1.05
        assert report.ess > 100

    def test_disagreeing_chains_incomplete(self):
        rng = np.random.default_rng(1)
        matrix = 0.1 + 0.01 * rng.normal(size=(4, 400))
        matrix[0] += 0.5
        report = CompletenessCriterion().assess(_chain_set(matrix))
        assert not report.complete
        assert report.r_hat > 1.05

    def test_too_few_samples_incomplete(self):
        rng = np.random.default_rng(2)
        cs = _chain_set(rng.normal(size=(2, 40)))
        report = CompletenessCriterion(min_ess=500).assess(cs)
        assert not report.complete

    def test_loose_tolerance_easier(self):
        rng = np.random.default_rng(3)
        cs = _chain_set(0.5 + 0.2 * rng.normal(size=(4, 300)))
        strict = CompletenessCriterion(stderr_tolerance=1e-4).assess(cs)
        loose = CompletenessCriterion(stderr_tolerance=0.05).assess(cs)
        assert not strict.complete
        assert loose.complete

    def test_report_string(self):
        rng = np.random.default_rng(4)
        report = CompletenessCriterion().assess(_chain_set(rng.normal(size=(2, 100))))
        text = str(report)
        assert "R-hat" in text and "ESS" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            CompletenessCriterion(r_hat_threshold=1.0)
        with pytest.raises(ValueError):
            CompletenessCriterion(min_ess=0)
        with pytest.raises(ValueError):
            CompletenessCriterion(stderr_tolerance=0)
        with pytest.raises(ValueError):
            CompletenessCriterion(discard_fraction=1.0)


class TestStepsToComplete:
    def test_finds_early_stopping_point(self):
        rng = np.random.default_rng(5)
        cs = _chain_set(0.2 + 0.05 * rng.normal(size=(4, 1000)))
        criterion = CompletenessCriterion(stderr_tolerance=0.01)
        steps = criterion.steps_to_complete(cs, check_every=50)
        assert steps is not None
        assert steps < 1000
        # And the prefix at that point really is complete.
        prefix = _chain_set(cs.matrix()[:, :steps])
        assert criterion.assess(prefix).complete

    def test_never_complete_returns_none(self):
        rng = np.random.default_rng(6)
        matrix = rng.normal(size=(2, 200))
        matrix[0] += 10  # irreconcilable chains
        criterion = CompletenessCriterion()
        assert criterion.steps_to_complete(_chain_set(matrix)) is None

    def test_check_every_validated(self):
        cs = _chain_set(np.zeros((2, 10)))
        with pytest.raises(ValueError):
            CompletenessCriterion().steps_to_complete(cs, check_every=0)
