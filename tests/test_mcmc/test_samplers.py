"""Samplers and proposals over fault-configuration space.

The crucial statistical property: the MH kernel targeting the fault prior
must agree with exact i.i.d. forward sampling — same stationary
distribution. We verify on the cheap "total flips" statistic, whose exact
law is Binomial(N, p).
"""

import numpy as np
import pytest

from repro.faults import BernoulliBitFlipModel, FaultConfiguration, TargetSpec, resolve_parameter_targets
from repro.mcmc import (
    BlockResample,
    ForwardSampler,
    MetropolisHastingsSampler,
    MixtureProposal,
    PriorTarget,
    SingleBitToggle,
    TemperedErrorTarget,
)
from repro.nn import paper_mlp


@pytest.fixture(scope="module")
def targets():
    return resolve_parameter_targets(paper_mlp(rng=0), TargetSpec.weights_and_biases())


def _flip_stat(cfg):
    return float(cfg.total_flips())


def _total_bits(targets):
    return sum(param.size for _, param in targets) * 32


class TestForwardSampler:
    def test_mean_flips_matches_binomial(self, targets):
        p = 0.02
        sampler = ForwardSampler(targets, BernoulliBitFlipModel(p), _flip_stat)
        chains = sampler.run(chains=2, steps=250, rng=0)
        expected = _total_bits(targets) * p
        std = np.sqrt(_total_bits(targets) * p * (1 - p) / 500)
        assert abs(chains.mean() - expected) < 5 * std

    def test_chains_are_independent_streams(self, targets):
        sampler = ForwardSampler(targets, BernoulliBitFlipModel(0.05), _flip_stat)
        chains = sampler.run(chains=2, steps=20, rng=1)
        assert not np.array_equal(chains.chains[0].values, chains.chains[1].values)

    def test_reproducible_for_equal_seed(self, targets):
        sampler = ForwardSampler(targets, BernoulliBitFlipModel(0.05), _flip_stat)
        a = sampler.run(chains=2, steps=30, rng=42).matrix()
        b = sampler.run(chains=2, steps=30, rng=42).matrix()
        assert np.array_equal(a, b)

    def test_validation(self, targets):
        sampler = ForwardSampler(targets, BernoulliBitFlipModel(0.1), _flip_stat)
        with pytest.raises(ValueError):
            sampler.run(chains=0, steps=5, rng=0)
        with pytest.raises(ValueError):
            sampler.run_chain(0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            ForwardSampler([], BernoulliBitFlipModel(0.1), _flip_stat)


class TestProposals:
    def test_single_bit_toggle_changes_one_bit(self, targets, rng):
        proposal = SingleBitToggle(targets)
        state = FaultConfiguration.empty(targets)
        candidate, log_h = proposal.propose(state, rng)
        assert log_h == 0.0
        assert candidate.total_flips() == 1
        assert state.total_flips() == 0  # original untouched

    def test_toggle_is_an_involution_in_distribution(self, targets, rng):
        proposal = SingleBitToggle(targets, bits_per_toggle=3)
        state = FaultConfiguration.empty(targets)
        candidate, _ = proposal.propose(state, rng)
        assert candidate.total_flips() == 3

    def test_block_resample_hastings_ratio(self, targets, rng):
        model = BernoulliBitFlipModel(0.05)
        proposal = BlockResample(targets, model)
        state = FaultConfiguration.sample(targets, model, rng)
        candidate, log_h = proposal.propose(state, rng)
        # For the prior target, acceptance = prior(new)/prior(old) * hastings
        # must be exactly 1 (Gibbs move).
        log_alpha = candidate.log_prob(model) - state.log_prob(model) + log_h
        assert log_alpha == pytest.approx(0.0, abs=1e-9)

    def test_mixture_weights_validated(self, targets):
        with pytest.raises(ValueError):
            MixtureProposal([])
        with pytest.raises(ValueError):
            MixtureProposal([(SingleBitToggle(targets), 0.0)])


class TestMetropolisHastings:
    def test_prior_target_matches_forward_sampling(self, targets):
        """MH stationary distribution = prior: flip-count means must agree."""
        p = 0.02
        model = BernoulliBitFlipModel(p)
        proposal = MixtureProposal(
            [(SingleBitToggle(targets), 0.3), (BlockResample(targets, model), 0.7)]
        )
        sampler = MetropolisHastingsSampler(
            PriorTarget(model),
            proposal,
            _flip_stat,
            initial=lambda r: FaultConfiguration.sample(targets, model, r),
        )
        chains = sampler.run(chains=4, steps=300, rng=2)
        expected = _total_bits(targets) * p
        # Generous tolerance: MH samples are correlated.
        assert abs(chains.mean(0.25) - expected) < 0.05 * expected

    def test_block_resample_always_accepted_on_prior(self, targets):
        model = BernoulliBitFlipModel(0.05)
        sampler = MetropolisHastingsSampler(
            PriorTarget(model),
            BlockResample(targets, model),
            _flip_stat,
            initial=lambda r: FaultConfiguration.sample(targets, model, r),
        )
        chain = sampler.run_chain(100, np.random.default_rng(3))
        assert chain.acceptance_rate == 1.0

    def test_single_bit_toggle_acceptance_reflects_prior(self, targets):
        # At small p, turning a bit ON is accepted w.p. ~p/(1-p); turning OFF
        # always. Starting from the empty config, acceptance ≈ p/(1-p) early,
        # so overall acceptance must be far below 1.
        p = 0.001
        model = BernoulliBitFlipModel(p)
        sampler = MetropolisHastingsSampler(
            PriorTarget(model),
            SingleBitToggle(targets),
            _flip_stat,
            initial=lambda r: FaultConfiguration.empty(targets),
        )
        chain = sampler.run_chain(300, np.random.default_rng(4))
        assert chain.acceptance_rate < 0.1

    def test_reproducibility(self, targets):
        model = BernoulliBitFlipModel(0.02)
        make = lambda: MetropolisHastingsSampler(
            PriorTarget(model),
            BlockResample(targets, model),
            _flip_stat,
            initial=lambda r: FaultConfiguration.sample(targets, model, r),
        )
        a = make().run(chains=2, steps=50, rng=5).matrix()
        b = make().run(chains=2, steps=50, rng=5).matrix()
        assert np.array_equal(a, b)

    def test_tempered_target_biases_toward_high_statistic(self, targets):
        """β>0 should shift the chain toward configurations with more flips
        (using flips as the 'error' statistic)."""
        model = BernoulliBitFlipModel(0.01)
        normaliser = _total_bits(targets)
        stat = lambda cfg: cfg.total_flips() / normaliser
        plain = MetropolisHastingsSampler(
            PriorTarget(model),
            BlockResample(targets, model),
            stat,
            initial=lambda r: FaultConfiguration.sample(targets, model, r),
        ).run(chains=2, steps=200, rng=6)
        tempered = MetropolisHastingsSampler(
            TemperedErrorTarget(model, stat, beta=2000.0),
            SingleBitToggle(targets),
            stat,
            initial=lambda r: FaultConfiguration.sample(targets, model, r),
        ).run(chains=2, steps=200, rng=7)
        assert tempered.mean(0.5) > plain.mean(0.5)

    def test_importance_weights_recover_prior(self, targets):
        target = TemperedErrorTarget(BernoulliBitFlipModel(0.01), _flip_stat, beta=0.0)
        # β=0: weights are all zero in log space → estimate equals raw mean.
        assert target.importance_log_weight(None, 0.5) == 0.0
