"""Unit tests for Tensor construction, arithmetic, and the backward pass."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, is_grad_enabled


class TestConstruction:
    def test_float_list_defaults_to_float32(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.dtype == np.float32

    def test_explicit_float64_array_preserved(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == np.float64

    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.shape == (2, 3, 4)
        assert t.size == 24
        assert t.ndim == 3

    def test_item_on_scalar(self):
        assert Tensor(np.float32(2.5)).item() == pytest.approx(2.5)

    def test_detach_cuts_graph(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad
        assert np.array_equal(d.data, np.full(3, 2.0, dtype=np.float32))

    def test_repr_mentions_grad(self):
        t = Tensor(np.zeros(2), requires_grad=True)
        assert "requires_grad=True" in repr(t)


class TestArithmeticValues:
    def test_add_sub_mul_div(self):
        a = Tensor(np.array([2.0, 4.0], dtype=np.float32))
        b = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert np.allclose((a + b).data, [3, 6])
        assert np.allclose((a - b).data, [1, 2])
        assert np.allclose((a * b).data, [2, 8])
        assert np.allclose((a / b).data, [2, 2])

    def test_scalar_operands(self):
        a = Tensor(np.array([1.0, 2.0], dtype=np.float32))
        assert np.allclose((a + 1).data, [2, 3])
        assert np.allclose((1 + a).data, [2, 3])
        assert np.allclose((3 - a).data, [2, 1])
        assert np.allclose((2 / a).data, [2, 1])
        assert np.allclose((-a).data, [-1, -2])

    def test_pow_scalar_only(self):
        a = Tensor(np.array([2.0, 3.0], dtype=np.float32))
        assert np.allclose((a**2).data, [4, 9])
        with pytest.raises(TypeError):
            _ = a ** Tensor(np.array([2.0]))

    def test_matmul_matrix_vector_shapes(self):
        m = Tensor(np.ones((3, 4), dtype=np.float32))
        v = Tensor(np.ones(4, dtype=np.float32))
        assert (m @ v).shape == (3,)
        assert (m @ Tensor(np.ones((4, 2), dtype=np.float32))).shape == (3, 2)


class TestBackward:
    def test_simple_chain(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x + x  # dy/dx = 2x + 1 = 7
        y.backward()
        assert x.grad == pytest.approx(7.0)

    def test_gradient_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x * x  # x used three times; dy/dx = 3x² = 12
        y.backward()
        assert x.grad == pytest.approx(12.0)

    def test_backward_requires_grad(self):
        x = Tensor(np.array([1.0]))
        with pytest.raises(RuntimeError):
            x.backward()

    def test_backward_shape_mismatch_rejected(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward(np.ones(4))

    def test_broadcast_add_unbroadcasts_gradient(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (2, 3)
        assert b.grad.shape == (3,)
        assert np.allclose(b.grad, [2, 2, 2])  # summed over broadcast axis

    def test_broadcast_scalar_like_shape(self):
        a = Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        b = Tensor(np.array([[1.0]], dtype=np.float32), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (1, 1)
        assert b.grad[0, 0] == pytest.approx(6.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        assert x.grad == pytest.approx(1.0)

    def test_zero_grad_resets(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2).backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_flag_restored_after_exception(self):
        assert is_grad_enabled()
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()
