"""Property-based tests of the autodiff engine (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import Tensor, grad_check
from repro.tensor.tensor import _unbroadcast

_small_floats = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, width=64)


def _arrays(max_side=4, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=max_dims, min_side=1, max_side=max_side),
        elements=_small_floats,
    )


class TestUnbroadcast:
    @given(_arrays())
    def test_same_shape_is_identity(self, arr):
        assert np.array_equal(_unbroadcast(arr, arr.shape), arr)

    @given(_arrays(max_dims=2))
    def test_gradient_of_broadcast_sums_to_total(self, arr):
        # Broadcasting arr to (3, *shape) then unbroadcasting the all-ones
        # gradient must give 3 in every slot.
        big = np.broadcast_to(arr, (3,) + arr.shape)
        grad = _unbroadcast(np.ones_like(big), arr.shape)
        assert np.allclose(grad, 3.0)


class TestAlgebraicIdentities:
    @given(_arrays(max_dims=2))
    @settings(max_examples=25, deadline=None)
    def test_add_commutes(self, arr):
        a = Tensor(arr)
        b = Tensor(arr[::-1].copy())
        assert np.allclose((a + b).data, (b + a).data)

    @given(_arrays(max_dims=2))
    @settings(max_examples=25, deadline=None)
    def test_double_negation(self, arr):
        a = Tensor(arr)
        assert np.allclose((-(-a)).data, arr)

    @given(_arrays(max_dims=2))
    @settings(max_examples=25, deadline=None)
    def test_sum_equals_numpy(self, arr):
        assert np.allclose(Tensor(arr).sum().data, arr.sum())

    @given(_arrays(max_dims=3))
    @settings(max_examples=25, deadline=None)
    def test_relu_idempotent(self, arr):
        a = Tensor(arr)
        once = a.relu()
        twice = once.relu()
        assert np.array_equal(once.data, twice.data)


class TestGradientProperties:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=4),
            elements=st.floats(min_value=-3.0, max_value=3.0, allow_nan=False, width=64),
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_tanh_grad_matches_finite_difference(self, arr):
        t = Tensor(arr, requires_grad=True)
        assert grad_check(lambda x: x.tanh(), [t], rtol=1e-3, atol=1e-5)

    @given(st.integers(min_value=1, max_value=5), st.integers(min_value=1, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_sum_gradient_is_ones(self, rows, cols):
        t = Tensor(np.random.default_rng(0).normal(size=(rows, cols)), requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, 1.0)
