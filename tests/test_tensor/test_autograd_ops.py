"""Gradient correctness for every Tensor op, verified by finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, grad_check


def _t(shape, seed=0, scale=1.0, shift=0.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.normal(size=shape) * scale + shift, requires_grad=True)


class TestElementwiseGrads:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda x: x.exp(),
            lambda x: x.tanh(),
            lambda x: x.sigmoid(),
            lambda x: x.relu(),
            lambda x: x.leaky_relu(0.1),
            lambda x: x * x,
            lambda x: x**3,
            lambda x: -x,
        ],
        ids=["exp", "tanh", "sigmoid", "relu", "leaky_relu", "square", "cube", "neg"],
    )
    def test_unary(self, fn):
        grad_check(fn, [_t((3, 4), seed=1)], rtol=1e-3, atol=1e-6)

    def test_log_and_sqrt_on_positive_input(self):
        x = Tensor(np.random.default_rng(2).uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        grad_check(lambda x: x.log(), [x], rtol=1e-3, atol=1e-6)
        x.zero_grad()
        grad_check(lambda x: x.sqrt(), [x], rtol=1e-3, atol=1e-6)

    def test_abs_away_from_zero(self):
        x = Tensor(np.random.default_rng(3).choice([-1.0, 1.0], size=6) * np.random.default_rng(4).uniform(0.5, 2, 6), requires_grad=True)
        grad_check(lambda x: x.abs(), [x], rtol=1e-3, atol=1e-6)

    def test_clip_interior_points(self):
        x = Tensor(np.linspace(-3, 3, 7, dtype=np.float64), requires_grad=True)
        grad_check(lambda x: x.clip(-2.5, 2.5), [x], rtol=1e-3, atol=1e-6)


class TestBinaryGrads:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda a, b: a + b,
            lambda a, b: a - b,
            lambda a, b: a * b,
            lambda a, b: a / b,
        ],
        ids=["add", "sub", "mul", "div"],
    )
    def test_broadcasting_pairs(self, fn):
        a = _t((2, 3), seed=5)
        b = Tensor(np.random.default_rng(6).uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        grad_check(fn, [a, b], rtol=1e-3, atol=1e-6)

    def test_matmul_2d(self):
        grad_check(lambda a, b: a @ b, [_t((3, 4), 7), _t((4, 2), 8)], rtol=1e-3, atol=1e-6)

    def test_matmul_matrix_vector(self):
        grad_check(lambda a, b: a @ b, [_t((3, 4), 9), _t((4,), 10)], rtol=1e-3, atol=1e-6)


class TestReductionGrads:
    def test_sum_all_axes(self):
        grad_check(lambda x: x.sum(), [_t((2, 3), 11)], rtol=1e-3, atol=1e-6)

    def test_sum_axis_keepdims(self):
        grad_check(lambda x: x.sum(axis=0, keepdims=True) * x, [_t((3, 2), 12)], rtol=1e-3, atol=1e-6)

    def test_mean_axes_tuple(self):
        grad_check(lambda x: x.mean(axis=(0, 2)), [_t((2, 3, 4), 13)], rtol=1e-3, atol=1e-6)

    def test_var(self):
        grad_check(lambda x: x.var(axis=1), [_t((3, 5), 14)], rtol=1e-3, atol=1e-6)

    def test_max_unique_values(self):
        x = Tensor(np.random.default_rng(15).permutation(12).astype(np.float64).reshape(3, 4), requires_grad=True)
        grad_check(lambda x: x.max(axis=1), [x], rtol=1e-3, atol=1e-6)

    def test_max_splits_ties(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.data = x.data.astype(np.float64)
        out = x.max(axis=1)
        out.backward(np.ones_like(out.data))
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])


class TestShapeGrads:
    def test_reshape(self):
        grad_check(lambda x: x.reshape(6) * Tensor(np.arange(6, dtype=np.float64), requires_grad=False), [_t((2, 3), 16)], rtol=1e-3, atol=1e-6)

    def test_transpose_default_and_axes(self):
        grad_check(lambda x: x.T * 2, [_t((2, 3), 17)], rtol=1e-3, atol=1e-6)
        grad_check(lambda x: x.transpose((2, 0, 1)).sum(axis=0), [_t((2, 3, 4), 18)], rtol=1e-3, atol=1e-6)

    def test_getitem_slice(self):
        grad_check(lambda x: x[1:, :2] * 3, [_t((3, 3), 19)], rtol=1e-3, atol=1e-6)

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.arange(4, dtype=np.float64), requires_grad=True)
        y = x[np.array([0, 0, 2])]
        y.backward(np.ones(3))
        assert np.allclose(x.grad, [2, 0, 1, 0])

    def test_concatenate(self):
        a, b = _t((2, 3), 20), _t((1, 3), 21)
        grad_check(lambda a, b: Tensor.concatenate([a, b], axis=0) * 2, [a, b], rtol=1e-3, atol=1e-6)

    def test_astype_roundtrip_gradient(self):
        x = _t((4,), 22)
        out = x.astype(np.float64) * 2
        out.backward(np.ones(4))
        assert np.allclose(x.grad, 2.0)
