"""Tests for conv/pool/pad/softmax primitives: values and gradients."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    conv2d,
    global_avg_pool2d,
    grad_check,
    log_softmax,
    max_pool2d,
    pad2d,
    softmax,
)
from repro.tensor.functional import im2col_indices


def _t(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape), requires_grad=True)


def _reference_conv2d(x, w, b, stride, padding):
    """Naive loop convolution for value verification."""
    n, c, h, wid = x.shape
    oc, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    oh = (h + 2 * padding - kh) // stride + 1
    ow = (wid + 2 * padding - kw) // stride + 1
    out = np.zeros((n, oc, oh, ow))
    for bi in range(n):
        for o in range(oc):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[bi, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[bi, o, i, j] = (patch * w[o]).sum() + (b[o] if b is not None else 0.0)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (3, 2)])
    def test_matches_reference(self, stride, padding):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(2, 3, 7, 7))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        got = conv2d(Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding)
        want = _reference_conv2d(x, w, b, stride, padding)
        assert got.shape == want.shape
        assert np.allclose(got.data, want, atol=1e-4)

    def test_no_bias(self):
        rng = np.random.default_rng(43)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        got = conv2d(Tensor(x), Tensor(w), None, stride=1, padding=0)
        want = _reference_conv2d(x, w, None, 1, 0)
        assert np.allclose(got.data, want, atol=1e-4)

    def test_gradients(self):
        x, w, b = _t((2, 2, 5, 5), 1), _t((3, 2, 3, 3), 2), _t((3,), 3)
        grad_check(lambda x, w, b: conv2d(x, w, b, stride=2, padding=1), [x, w, b], rtol=1e-3, atol=1e-5)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError, match="channels"):
            conv2d(_t((1, 3, 5, 5)), _t((2, 4, 3, 3)))

    def test_kernel_too_large_raises(self):
        with pytest.raises(ValueError, match="larger than"):
            conv2d(_t((1, 1, 2, 2)), _t((1, 1, 5, 5)))


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = max_pool2d(Tensor(x), 2)
        assert np.array_equal(out.data.reshape(2, 2), [[5, 7], [13, 15]])

    def test_avg_pool_values(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = avg_pool2d(Tensor(x), 2)
        assert np.allclose(out.data.reshape(2, 2), [[2.5, 4.5], [10.5, 12.5]])

    def test_strided_max_pool_shape(self):
        out = max_pool2d(_t((2, 3, 8, 8)), kernel_size=3, stride=2)
        assert out.shape == (2, 3, 3, 3)

    def test_max_pool_gradient(self):
        grad_check(lambda x: max_pool2d(x, 2), [_t((2, 2, 4, 4), 5)], rtol=1e-3, atol=1e-5)

    def test_avg_pool_gradient(self):
        grad_check(lambda x: avg_pool2d(x, 2), [_t((2, 2, 4, 4), 6)], rtol=1e-3, atol=1e-5)

    def test_global_avg_pool(self):
        x = _t((2, 3, 4, 4), 7)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        assert np.allclose(out.data, x.data.mean(axis=(2, 3)))


class TestPad:
    def test_pad_values_and_gradient(self):
        x = _t((1, 1, 2, 2), 8)
        out = pad2d(x, 1)
        assert out.shape == (1, 1, 4, 4)
        assert out.data[0, 0, 0, 0] == 0.0
        grad_check(lambda x: pad2d(x, 2) * 3, [x], rtol=1e-3, atol=1e-6)

    def test_pad_zero_is_identity(self):
        x = _t((1, 1, 3, 3), 9)
        assert pad2d(x, 0) is x


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self):
        out = softmax(_t((4, 6), 10))
        assert np.allclose(out.data.sum(axis=1), 1.0, atol=1e-6)

    def test_log_softmax_consistent_with_softmax(self):
        x = _t((3, 5), 11)
        assert np.allclose(np.exp(log_softmax(x).data), softmax(x).data, atol=1e-6)

    def test_shift_invariance(self):
        x = np.random.default_rng(12).normal(size=(2, 4))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 1000.0)).data
        assert np.allclose(a, b, atol=1e-6)

    def test_numerical_stability_extreme_logits(self):
        x = Tensor(np.array([[1e4, -1e4, 0.0]]))
        out = log_softmax(x)
        assert np.isfinite(out.data).all()

    def test_gradients(self):
        grad_check(lambda x: softmax(x) * Tensor(np.arange(8, dtype=np.float64).reshape(2, 4)), [_t((2, 4), 13)], rtol=1e-3, atol=1e-6)
        grad_check(lambda x: log_softmax(x)[np.arange(2), np.array([0, 2])], [_t((2, 4), 14)], rtol=1e-3, atol=1e-6)


class TestIm2Col:
    def test_output_dims(self):
        k, i, j, oh, ow = im2col_indices((1, 2, 5, 5), 3, 3, 1, 1)
        assert oh == ow == 5
        assert k.shape == (2 * 9, 1)
        assert i.shape == (2 * 9, 25)

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            im2col_indices((1, 1, 2, 2), 5, 5, 1, 0)
